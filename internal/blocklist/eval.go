package blocklist

import (
	"fmt"

	"unclean/internal/ipset"
	"unclean/internal/netaddr"
	"unclean/internal/netflow"
	"unclean/internal/stats"
)

// Eval is the outcome of virtually applying a blocklist to a traffic log:
// nothing is dropped, but every flow and source is scored as if the list
// had been enforced (the paper's §6.2 "virtual blocking capacity").
type Eval struct {
	// FlowsBlocked and FlowsPassed count flow records.
	FlowsBlocked, FlowsPassed int
	// BlockedSources and PassedSources are the distinct source addresses
	// on each side. A source that is blocked is never also passed: rules
	// match sources, not individual flows.
	BlockedSources, PassedSources ipset.Set
	// PayloadBlocked counts blocked flows that were payload-bearing —
	// the collateral a real deployment would feel.
	PayloadBlocked int
}

// evalShardCutoff is the log size below which sharding the scorer is not
// worth the fan-out overhead.
const evalShardCutoff = 1 << 14

// Evaluate applies the blocklist to a traffic log. The trie is compiled
// into a flat matcher once and the log is scored against it; for a log
// worth sharding the compile cost is noise next to the per-flow win.
// Counts are sums and source sets are unions, so the result is identical
// to a sequential trie scan regardless of shard count or scheduling.
func Evaluate(t *Trie, records []netflow.Record) Eval {
	return EvaluateMatcher(Compile(t), records)
}

// EvaluateMatcher applies an already-compiled blocklist to a traffic
// log. The matcher is immutable, so large logs are split into contiguous
// shards scored concurrently on the shared worker pool and merged.
func EvaluateMatcher(m *Matcher, records []netflow.Record) Eval {
	shards := stats.Workers(len(records) / evalShardCutoff)
	if shards <= 1 {
		return evaluateShard(m.Blocks, records)
	}
	parts := make([]Eval, shards)
	per := (len(records) + shards - 1) / shards
	stats.Parallel(shards, func(_, i int) {
		lo := i * per
		hi := min(lo+per, len(records))
		parts[i] = evaluateShard(m.Blocks, records[lo:hi])
	})
	return mergeEvals(parts)
}

// evaluateTrie is the seed implementation scoring directly off the radix
// trie. It is kept as the reference for differential tests and as the
// baseline the compiled path is benchmarked against.
func evaluateTrie(t *Trie, records []netflow.Record) Eval {
	shards := stats.Workers(len(records) / evalShardCutoff)
	if shards <= 1 {
		return evaluateShard(t.Blocks, records)
	}
	parts := make([]Eval, shards)
	per := (len(records) + shards - 1) / shards
	stats.Parallel(shards, func(_, i int) {
		lo := i * per
		hi := min(lo+per, len(records))
		parts[i] = evaluateShard(t.Blocks, records[lo:hi])
	})
	return mergeEvals(parts)
}

func mergeEvals(parts []Eval) Eval {
	var e Eval
	blocked := ipset.NewBuilder(0)
	passed := ipset.NewBuilder(0)
	for _, p := range parts {
		e.FlowsBlocked += p.FlowsBlocked
		e.FlowsPassed += p.FlowsPassed
		e.PayloadBlocked += p.PayloadBlocked
		blocked.AddSet(p.BlockedSources)
		passed.AddSet(p.PassedSources)
	}
	e.BlockedSources = blocked.Build()
	e.PassedSources = passed.Build()
	return e
}

func evaluateShard(blocks func(netaddr.Addr) bool, records []netflow.Record) Eval {
	blocked := ipset.NewBuilder(0)
	passed := ipset.NewBuilder(0)
	var e Eval
	for i := range records {
		r := &records[i]
		if blocks(r.SrcAddr) {
			e.FlowsBlocked++
			blocked.Add(r.SrcAddr)
			if r.PayloadBearing() {
				e.PayloadBlocked++
			}
		} else {
			e.FlowsPassed++
			passed.Add(r.SrcAddr)
		}
	}
	e.BlockedSources = blocked.Build()
	e.PassedSources = passed.Build()
	return e
}

// Confusion scores an Eval against ground truth: hostile sources that
// should be blocked and innocent sources that should pass. Sources in
// neither set (the unknown population) are ignored, exactly as §6.1
// excludes them from scoring.
type Confusion struct {
	TP, FP, FN, TN int
}

// TPR returns the true positive rate TP/(TP+FN); zero when undefined.
func (c Confusion) TPR() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FPR returns the false positive rate FP/(FP+TN); zero when undefined.
func (c Confusion) FPR() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// String renders the matrix compactly.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d FN=%d TN=%d (TPR=%.3f FPR=%.3f)",
		c.TP, c.FP, c.FN, c.TN, c.TPR(), c.FPR())
}

// Score computes the confusion matrix of an evaluation.
func (e Eval) Score(hostile, innocent ipset.Set) Confusion {
	return Confusion{
		TP: e.BlockedSources.Intersect(hostile).Len(),
		FP: e.BlockedSources.Intersect(innocent).Len(),
		FN: e.PassedSources.Intersect(hostile).Len(),
		TN: e.PassedSources.Intersect(innocent).Len(),
	}
}

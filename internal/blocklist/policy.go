package blocklist

import (
	"fmt"

	"unclean/internal/netaddr"
	"unclean/internal/netflow"
)

// Verdict is a policy decision for one address.
type Verdict uint8

// Verdicts.
const (
	// NoMatch means neither list covers the address (default permit).
	NoMatch Verdict = iota
	// Allowed means an allow rule won.
	Allowed
	// Denied means a deny rule won.
	Denied
)

var verdictNames = [...]string{NoMatch: "no-match", Allowed: "allowed", Denied: "denied"}

// String returns the verdict name.
func (v Verdict) String() string {
	if int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return "unknown"
}

// Policy combines a deny list (the uncleanliness-derived blocks) with an
// allow list (known-good partners, the paper's "benefit of receiving
// commerce and communication" consideration, §7). The most specific
// matching rule wins; on equal prefix lengths the allow rule wins, so an
// exact allowlisting always overrides a same-size block.
type Policy struct {
	allow, deny *Trie
}

// NewPolicy builds a policy; either list may be nil (treated as empty).
func NewPolicy(allow, deny *Trie) *Policy {
	if allow == nil {
		allow = &Trie{}
	}
	if deny == nil {
		deny = &Trie{}
	}
	return &Policy{allow: allow, deny: deny}
}

// Decide returns the verdict for an address and the rule that produced
// it (zero Entry for NoMatch).
func (p *Policy) Decide(a netaddr.Addr) (Verdict, Entry) {
	allowEntry, allowOK := p.allow.Lookup(a)
	denyEntry, denyOK := p.deny.Lookup(a)
	switch {
	case !allowOK && !denyOK:
		return NoMatch, Entry{}
	case allowOK && !denyOK:
		return Allowed, allowEntry
	case !allowOK && denyOK:
		return Denied, denyEntry
	case allowEntry.Block.Bits() >= denyEntry.Block.Bits():
		return Allowed, allowEntry
	default:
		return Denied, denyEntry
	}
}

// PolicyEval scores a policy over a traffic log.
type PolicyEval struct {
	// FlowsDenied/FlowsAllowed/FlowsUnmatched count records by verdict.
	FlowsDenied, FlowsAllowed, FlowsUnmatched int
	// PayloadDenied counts denied payload-bearing flows (collateral).
	PayloadDenied int
}

// Apply evaluates the policy against a flow log (virtually: nothing is
// dropped).
func (p *Policy) Apply(records []netflow.Record) PolicyEval {
	var e PolicyEval
	for i := range records {
		r := &records[i]
		verdict, _ := p.Decide(r.SrcAddr)
		switch verdict {
		case Denied:
			e.FlowsDenied++
			if r.PayloadBearing() {
				e.PayloadDenied++
			}
		case Allowed:
			e.FlowsAllowed++
		default:
			e.FlowsUnmatched++
		}
	}
	return e
}

// String summarizes the evaluation.
func (e PolicyEval) String() string {
	return fmt.Sprintf("denied=%d (payload %d) allowed=%d unmatched=%d",
		e.FlowsDenied, e.PayloadDenied, e.FlowsAllowed, e.FlowsUnmatched)
}

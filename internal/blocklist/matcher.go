package blocklist

import (
	"fmt"
	"slices"
	"time"

	"unclean/internal/ipset"
	"unclean/internal/netaddr"
)

// This file implements the compiled longest-prefix-match engine: an
// immutable, cache-friendly flattening of the radix Trie into a 16-8-8
// multibit trie (DIR-24-8 style). The root table indexes the first 16
// address bits directly; /16s that contain longer rules hang a 256-slot
// 8-bit stride leaf off their root slot, and /24s that contain even
// longer rules hang a second 256-slot leaf off that. A lookup is then at
// most three dependent array loads — no pointer chasing, no branches per
// prefix bit, no allocation — which is what the serving hot path (DNSBL
// queries, flow scoring) needs at production traffic rates.
//
// Compilation expands every rule into the slots it covers, processing
// rules in ascending prefix-length order so longer (more specific)
// prefixes overwrite shorter ones. Rules shorter than /16 have no home of
// their own in the root table and are fan-out expanded across up to
// 2^(16-bits) root slots — the classic DIR-24-8 "slow path" rules. They
// stay fully matched (there is no coverage gap), but each one costs
// expansion work and root-table churn, so compilation counts them on the
// unclean_blocklist_compile_short_prefix_total series and logs them,
// keeping the fallback population visible on /metrics.

// slot encoding: a slot is either 0 (no match), entryIdx+1 (terminal
// match), or leafFlag|leafNo (pointer to the 256-slot leaf starting at
// leafNo*leafSize in the leaves arena).
const (
	leafFlag = uint32(1) << 31
	leafSize = 256
	// maxRules bounds the rule count so entryIdx+1 can never collide
	// with leafFlag.
	maxRules = 1<<31 - 2
)

// Matcher is a compiled, immutable longest-prefix-match structure. Build
// one with Compile; lookups are allocation-free and safe for concurrent
// use. The zero value matches nothing but is not usable — always
// construct via Compile.
type Matcher struct {
	root    []uint32 // 1<<16 slots indexed by the top 16 address bits
	leaves  []uint32 // concatenated 256-slot stride-8 leaf tables
	entries []Entry  // rule payloads; slots store index+1
	short   int      // rules shorter than /16, fan-out expanded
}

// Compile flattens a trie into a Matcher. The trie is not retained and
// may be mutated afterwards without affecting the compiled structure.
func Compile(t *Trie) *Matcher {
	start := time.Now()
	entries := t.Entries()
	if len(entries) > maxRules {
		panic(fmt.Sprintf("blocklist: %d rules exceed the compiled matcher capacity", len(entries)))
	}
	// Ascending prefix length, so specific rules overwrite broad ones and
	// a rule can never encounter a leaf created by a more specific rule
	// at a level above its own (leaves are only created by longer
	// prefixes, which sort later).
	slices.SortFunc(entries, func(a, b Entry) int {
		if c := a.Block.Bits() - b.Block.Bits(); c != 0 {
			return c
		}
		if a.Block.Base() != b.Block.Base() {
			if a.Block.Base() < b.Block.Base() {
				return -1
			}
			return 1
		}
		return 0
	})
	m := &Matcher{root: make([]uint32, 1<<16), entries: entries}
	for i := range entries {
		m.expand(entries[i].Block, uint32(i)+1)
	}
	compileSeconds.Observe(time.Since(start))
	compileRules.Add(uint64(len(entries)))
	compileShortPrefix.Add(uint64(m.short))
	if m.short > 0 {
		logger.Debug("compiled matcher with fan-out expanded short-prefix rules",
			"rules", len(entries), "shortPrefixRules", m.short, "leafTables", len(m.leaves)/leafSize)
	}
	return m
}

// expand writes slot value v over every slot the block covers.
func (m *Matcher) expand(b netaddr.Block, v uint32) {
	base := uint32(b.Base())
	bits := b.Bits()
	switch {
	case bits <= 16:
		if bits < 16 {
			m.short++
		}
		lo := base >> 16
		for s, n := lo, uint32(1)<<(16-uint(bits)); s < lo+n; s++ {
			m.root[s] = v
		}
	case bits <= 24:
		l := m.leafForRoot(base >> 16)
		lo := l + (base>>8)&0xff
		for s, n := lo, uint32(1)<<(24-uint(bits)); s < lo+n; s++ {
			m.leaves[s] = v
		}
	default:
		l2 := m.leafForRoot(base >> 16)
		l3 := m.leafForLeaf(l2 + (base>>8)&0xff)
		lo := l3 + base&0xff
		for s, n := lo, uint32(1)<<(32-uint(bits)); s < lo+n; s++ {
			m.leaves[s] = v
		}
	}
}

// leafForRoot ensures root slot ri points at a leaf table and returns the
// leaf's base offset in the arena. A freshly allocated leaf inherits the
// slot's previous terminal value in every position, preserving the
// shorter-prefix match for addresses no longer rule refines.
func (m *Matcher) leafForRoot(ri uint32) uint32 {
	if v := m.root[ri]; v&leafFlag != 0 {
		return (v &^ leafFlag) * leafSize
	}
	l := m.newLeaf(m.root[ri])
	m.root[ri] = leafFlag | (l / leafSize)
	return l
}

// leafForLeaf is leafForRoot for a slot inside the leaves arena (the
// /16 → /24 level). It must re-index the arena after newLeaf because
// growing it may have moved the backing array.
func (m *Matcher) leafForLeaf(li uint32) uint32 {
	if v := m.leaves[li]; v&leafFlag != 0 {
		return (v &^ leafFlag) * leafSize
	}
	l := m.newLeaf(m.leaves[li])
	m.leaves[li] = leafFlag | (l / leafSize)
	return l
}

// newLeaf appends a 256-slot leaf filled with the inherited value and
// returns its base offset.
func (m *Matcher) newLeaf(fill uint32) uint32 {
	base := uint32(len(m.leaves))
	m.leaves = slices.Grow(m.leaves, leafSize)[:base+leafSize]
	leaf := m.leaves[base : base+leafSize]
	for i := range leaf {
		leaf[i] = fill
	}
	return base
}

// slotFor resolves the terminal slot value for an address: 0 for no
// match, entryIdx+1 otherwise.
func (m *Matcher) slotFor(a netaddr.Addr) uint32 {
	u := uint32(a)
	v := m.root[u>>16]
	if v&leafFlag != 0 {
		v = m.leaves[(v&^leafFlag)*leafSize+(u>>8)&0xff]
		if v&leafFlag != 0 {
			v = m.leaves[(v&^leafFlag)*leafSize+u&0xff]
		}
	}
	return v
}

// Lookup returns the most specific rule covering a, if any. It performs
// no allocation and is safe for concurrent use.
func (m *Matcher) Lookup(a netaddr.Addr) (Entry, bool) {
	v := m.slotFor(a)
	if v == 0 {
		return Entry{}, false
	}
	return m.entries[v-1], true
}

// Blocks reports whether a is covered by any rule.
func (m *Matcher) Blocks(a netaddr.Addr) bool { return m.slotFor(a) != 0 }

// Len returns the number of rules compiled in.
func (m *Matcher) Len() int { return len(m.entries) }

// ShortPrefixRules returns how many rules were shorter than /16 and had
// to be fan-out expanded across the root table (the DIR-24-8 slow-path
// population, also counted on unclean_blocklist_compile_short_prefix_total).
func (m *Matcher) ShortPrefixRules() int { return m.short }

// sizeBytes returns the memory footprint of the compiled tables.
func (m *Matcher) sizeBytes() int { return 4 * (len(m.root) + len(m.leaves)) }

// String summarizes the compiled structure.
func (m *Matcher) String() string {
	return fmt.Sprintf("matcher(%d rules, %d leaves, %d KiB)",
		len(m.entries), len(m.leaves)/leafSize, m.sizeBytes()/1024)
}

// MatcherSet compiles up to 32 blocklists into one 16-8-8 structure
// whose terminal payload is a bitmask over the lists, so a single probe
// answers "which of the lists block this address" — the §6 sweep asks
// this for the nine C_n(R_bot-test) lists at once, turning nine passes
// over a flow log into one.
type MatcherSet struct {
	root   []uint32
	leaves []uint32
	masks  []uint32 // dedup'd bitmask payloads; slots store index+1
	lists  int
}

// setEntry is one (block, list) pair during MatcherSet compilation.
type setEntry struct {
	block netaddr.Block
	bit   uint32
}

// CompileSet compiles several lists into a MatcherSet; bit i of a Mask
// result refers to lists[i]. At most 32 lists are supported.
func CompileSet(lists []*Trie) (*MatcherSet, error) {
	if len(lists) > 32 {
		return nil, fmt.Errorf("blocklist: MatcherSet supports at most 32 lists, got %d", len(lists))
	}
	start := time.Now()
	var entries []setEntry
	for i, t := range lists {
		bit := uint32(1) << uint(i)
		t.Walk(func(e Entry) bool {
			entries = append(entries, setEntry{block: e.Block, bit: bit})
			return true
		})
	}
	// Ascending prefix length for the same reason as Compile; ties broken
	// by base then bit for determinism (writes at equal length OR into
	// disjoint or identical ranges, so the order never changes results).
	slices.SortFunc(entries, func(a, b setEntry) int {
		if c := a.block.Bits() - b.block.Bits(); c != 0 {
			return c
		}
		if a.block.Base() != b.block.Base() {
			if a.block.Base() < b.block.Base() {
				return -1
			}
			return 1
		}
		if a.bit != b.bit {
			if a.bit < b.bit {
				return -1
			}
			return 1
		}
		return 0
	})
	ms := &MatcherSet{root: make([]uint32, 1<<16), lists: len(lists)}
	idx := map[uint32]uint32{}
	short := 0
	for _, e := range entries {
		if e.block.Bits() < 16 {
			short++
		}
		ms.orRange(e.block, e.bit, idx)
	}
	compileSeconds.Observe(time.Since(start))
	compileRules.Add(uint64(len(entries)))
	compileShortPrefix.Add(uint64(short))
	return ms, nil
}

// SweepSet compiles the prefix sweep C_n(seed) for every n in [lo, hi]
// into one MatcherSet: bit n-lo of a Mask result reports membership in
// C_n(seed). This is the §6 blocking sweep as a single compiled probe.
func SweepSet(seed ipset.Set, lo, hi int) (*MatcherSet, error) {
	if lo < 0 || hi > 32 || lo > hi {
		return nil, fmt.Errorf("blocklist: invalid sweep range [%d, %d]", lo, hi)
	}
	if hi-lo+1 > 32 {
		return nil, fmt.Errorf("blocklist: sweep range [%d, %d] exceeds 32 lists", lo, hi)
	}
	lists := make([]*Trie, 0, hi-lo+1)
	for n := lo; n <= hi; n++ {
		lists = append(lists, FromSet(seed, n, "sweep"))
	}
	return CompileSet(lists)
}

// orRange ORs bit into every slot the block covers, preserving the
// masks accumulated by shorter prefixes underneath.
func (ms *MatcherSet) orRange(b netaddr.Block, bit uint32, idx map[uint32]uint32) {
	base := uint32(b.Base())
	bits := b.Bits()
	switch {
	case bits <= 16:
		lo := base >> 16
		for s, n := lo, uint32(1)<<(16-uint(bits)); s < lo+n; s++ {
			ms.root[s] = ms.orSlot(ms.root[s], bit, idx)
		}
	case bits <= 24:
		l := ms.leafForRoot(base >> 16)
		lo := l + (base>>8)&0xff
		for s, n := lo, uint32(1)<<(24-uint(bits)); s < lo+n; s++ {
			ms.leaves[s] = ms.orSlot(ms.leaves[s], bit, idx)
		}
	default:
		l2 := ms.leafForRoot(base >> 16)
		l3 := ms.leafForLeaf(l2 + (base>>8)&0xff)
		lo := l3 + base&0xff
		for s, n := lo, uint32(1)<<(32-uint(bits)); s < lo+n; s++ {
			ms.leaves[s] = ms.orSlot(ms.leaves[s], bit, idx)
		}
	}
}

// orSlot returns the slot value for oldSlot's mask with bit OR'd in,
// interning the resulting mask in ms.masks.
func (ms *MatcherSet) orSlot(oldSlot, bit uint32, idx map[uint32]uint32) uint32 {
	var mask uint32
	if oldSlot != 0 {
		mask = ms.masks[oldSlot-1]
	}
	mask |= bit
	if v, ok := idx[mask]; ok {
		return v
	}
	ms.masks = append(ms.masks, mask)
	v := uint32(len(ms.masks))
	idx[mask] = v
	return v
}

func (ms *MatcherSet) leafForRoot(ri uint32) uint32 {
	if v := ms.root[ri]; v&leafFlag != 0 {
		return (v &^ leafFlag) * leafSize
	}
	l := ms.newLeaf(ms.root[ri])
	ms.root[ri] = leafFlag | (l / leafSize)
	return l
}

func (ms *MatcherSet) leafForLeaf(li uint32) uint32 {
	if v := ms.leaves[li]; v&leafFlag != 0 {
		return (v &^ leafFlag) * leafSize
	}
	l := ms.newLeaf(ms.leaves[li])
	ms.leaves[li] = leafFlag | (l / leafSize)
	return l
}

func (ms *MatcherSet) newLeaf(fill uint32) uint32 {
	base := uint32(len(ms.leaves))
	ms.leaves = slices.Grow(ms.leaves, leafSize)[:base+leafSize]
	leaf := ms.leaves[base : base+leafSize]
	for i := range leaf {
		leaf[i] = fill
	}
	return base
}

// Mask returns the bitmask of lists whose rules cover a (bit i set means
// lists[i] blocks a, or membership in C_{lo+i} for SweepSet). It is
// allocation-free and safe for concurrent use.
func (ms *MatcherSet) Mask(a netaddr.Addr) uint32 {
	u := uint32(a)
	v := ms.root[u>>16]
	if v&leafFlag != 0 {
		v = ms.leaves[(v&^leafFlag)*leafSize+(u>>8)&0xff]
		if v&leafFlag != 0 {
			v = ms.leaves[(v&^leafFlag)*leafSize+u&0xff]
		}
	}
	if v == 0 {
		return 0
	}
	return ms.masks[v-1]
}

// Lists returns the number of lists compiled in.
func (ms *MatcherSet) Lists() int { return ms.lists }

package blocklist

import (
	"testing"

	"unclean/internal/netaddr"
	"unclean/internal/stats"
)

func benchTrie(nRules int) *Trie {
	rng := stats.NewRNG(9)
	t := &Trie{}
	for i := 0; i < nRules; i++ {
		t.Insert(netaddr.Addr(rng.Uint32()).Block(16+rng.Intn(17)), "bench")
	}
	return t
}

func BenchmarkTrieInsert(b *testing.B) {
	rng := stats.NewRNG(10)
	blocks := make([]netaddr.Block, 10000)
	for i := range blocks {
		blocks[i] = netaddr.Addr(rng.Uint32()).Block(24)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := &Trie{}
		for _, blk := range blocks {
			t.Insert(blk, "x")
		}
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	t := benchTrie(10000)
	rng := stats.NewRNG(11)
	probes := make([]netaddr.Addr, 1024)
	for i := range probes {
		probes[i] = netaddr.Addr(rng.Uint32())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(probes[i%len(probes)])
	}
}

func BenchmarkTrieWalk(b *testing.B) {
	t := benchTrie(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		t.Walk(func(Entry) bool {
			n++
			return true
		})
		if n == 0 {
			b.Fatal("empty walk")
		}
	}
}

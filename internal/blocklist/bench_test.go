package blocklist

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"unclean/internal/ipset"
	"unclean/internal/netaddr"
	"unclean/internal/netflow"
	"unclean/internal/simnet"
	"unclean/internal/stats"
)

func benchTrie(nRules int) *Trie {
	rng := stats.NewRNG(9)
	t := &Trie{}
	for i := 0; i < nRules; i++ {
		t.Insert(netaddr.Addr(rng.Uint32()).Block(16+rng.Intn(17)), "bench")
	}
	return t
}

func BenchmarkTrieInsert(b *testing.B) {
	rng := stats.NewRNG(10)
	blocks := make([]netaddr.Block, 10000)
	for i := range blocks {
		blocks[i] = netaddr.Addr(rng.Uint32()).Block(24)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := &Trie{}
		for _, blk := range blocks {
			t.Insert(blk, "x")
		}
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	t := benchTrie(10000)
	rng := stats.NewRNG(11)
	probes := make([]netaddr.Addr, 1024)
	for i := range probes {
		probes[i] = netaddr.Addr(rng.Uint32())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(probes[i%len(probes)])
	}
}

// BenchmarkEvaluate scores a 256k-flow log against a 10k-rule list — the
// sharded scorer path, which fans flow scoring out over all cores.
func BenchmarkEvaluate(b *testing.B) {
	t := benchTrie(10000)
	rng := stats.NewRNG(12)
	t0 := time.Date(2006, 10, 1, 0, 0, 0, 0, time.UTC)
	records := make([]netflow.Record, 1<<18)
	for i := range records {
		records[i] = netflow.Record{
			SrcAddr: netaddr.Addr(rng.Uint32()),
			DstAddr: netaddr.Addr(rng.Uint32()),
			Packets: 2, Octets: 96,
			First: t0, Last: t0.Add(time.Second),
			SrcPort: 2000, DstPort: 80, Proto: netflow.ProtoTCP,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := Evaluate(t, records)
		if e.FlowsBlocked+e.FlowsPassed != len(records) {
			b.Fatal("lost flows")
		}
	}
}

func BenchmarkTrieWalk(b *testing.B) {
	t := benchTrie(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		t.Walk(func(Entry) bool {
			n++
			return true
		})
		if n == 0 {
			b.Fatal("empty walk")
		}
	}
}

// ---- compiled matcher vs trie at 100k rules ----

// benchRules is the rule count for the Lookup-vs-Blocks comparison; the
// acceptance bar is Matcher >= 5x Trie at this size with 0 allocs/op.
const benchRules = 100_000

var benchCompiled struct {
	once   sync.Once
	trie   *Trie
	m      *Matcher
	probes []netaddr.Addr
}

func benchMatcherSetup() (*Trie, *Matcher, []netaddr.Addr) {
	benchCompiled.once.Do(func() {
		benchCompiled.trie = benchTrie(benchRules)
		benchCompiled.m = Compile(benchCompiled.trie)
		rng := stats.NewRNG(13)
		probes := make([]netaddr.Addr, 4096)
		for i := range probes {
			probes[i] = netaddr.Addr(rng.Uint32())
		}
		benchCompiled.probes = probes
	})
	return benchCompiled.trie, benchCompiled.m, benchCompiled.probes
}

func BenchmarkTrieBlocks(b *testing.B) {
	tr, _, probes := benchMatcherSetup()
	b.ReportAllocs()
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		if tr.Blocks(probes[i%len(probes)]) {
			hits++
		}
	}
	if b.N > 0 && hits < 0 {
		b.Fatal("impossible")
	}
}

func BenchmarkMatcherLookup(b *testing.B) {
	_, m, probes := benchMatcherSetup()
	b.ReportAllocs()
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		if m.Blocks(probes[i%len(probes)]) {
			hits++
		}
	}
	if b.N > 0 && hits < 0 {
		b.Fatal("impossible")
	}
}

func BenchmarkMatcherCompile(b *testing.B) {
	tr, _, _ := benchMatcherSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Compile(tr).Len() != tr.Len() {
			b.Fatal("lost rules")
		}
	}
}

// ---- §6 two-week sweep: one compiled pass vs nine trie passes ----

// benchSweep lazily synthesizes the two-week unclean-window flow log at
// 1/1024 of paper scale, shared by the sweep benchmarks below.
var benchSweep struct {
	once sync.Once
	recs []netflow.Record
	seed ipset.Set
}

func benchSweepSetup() ([]netflow.Record, ipset.Set) {
	benchSweep.once.Do(func() {
		cfg := simnet.DefaultConfig(1.0 / 1024)
		cfg.Seed = 20061001
		w, err := simnet.NewWorld(cfg)
		if err != nil {
			panic(err)
		}
		from := time.Date(2006, 10, 1, 0, 0, 0, 0, time.UTC)
		to := time.Date(2006, 10, 14, 0, 0, 0, 0, time.UTC)
		err = w.StreamFlows(from, to, simnet.FlowOptions{
			BenignSourcesPerDay: 400,
			CandidateExtras:     true,
		}, func(_ time.Time, day []netflow.Record) error {
			benchSweep.recs = append(benchSweep.recs, day...)
			return nil
		})
		if err != nil {
			panic(err)
		}
		benchSweep.seed = w.BotTest()
	})
	return benchSweep.recs, benchSweep.seed
}

// benchChunk mirrors the chunk size flowcat streams through evaluators.
const benchChunk = 8192

// BenchmarkBlockingTable is the §6 end-to-end sweep as shipped: the nine
// C_n(R_bot-test) lists compiled into one MatcherSet, the whole two-week
// flow log streamed through a SweepEvaluator in one pass. The acceptance
// bar is >= 3x BenchmarkBlockingTableNinePass.
func BenchmarkBlockingTable(b *testing.B) {
	recs, seed := benchSweepSetup()
	ms, err := SweepSet(seed, 24, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv := NewSweepEvaluator(ms)
		for off := 0; off < len(recs); off += benchChunk {
			sv.Consume(recs[off:min(off+benchChunk, len(recs))])
		}
		if sv.Sources() == 0 {
			b.Fatal("no sources seen")
		}
	}
	b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "flows/sec")
}

// BenchmarkBlockingTableNinePass is the seed shape of the same sweep:
// one full evaluation pass over the flow log per prefix length, each
// against its own C_n trie.
func BenchmarkBlockingTableNinePass(b *testing.B) {
	recs, seed := benchSweepSetup()
	tries := make([]*Trie, 0, 9)
	for n := 24; n <= 32; n++ {
		tries = append(tries, FromSet(seed, n, "sweep"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range tries {
			e := evaluateTrie(tr, recs)
			if e.FlowsBlocked+e.FlowsPassed != len(recs) {
				b.Fatal("lost flows")
			}
		}
	}
	b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "flows/sec")
}

// BenchmarkEvaluatorStream drives the two-week log through the streaming
// Evaluator in flowcat-sized chunks and reports the peak heap held while
// streaming — the bounded-memory claim: memory tracks distinct sources,
// not log length.
func BenchmarkEvaluatorStream(b *testing.B) {
	recs, seed := benchSweepSetup()
	m := Compile(FromSet(seed, 24, "sweep"))
	var peak uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := NewEvaluator(m)
		for off := 0; off < len(recs); off += benchChunk {
			ev.Consume(recs[off:min(off+benchChunk, len(recs))])
		}
		e := ev.Result()
		if e.FlowsBlocked+e.FlowsPassed != len(recs) {
			b.Fatal("lost flows")
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
	}
	b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "flows/sec")
	b.ReportMetric(float64(peak)/(1<<20), "peak-heap-MB")
}

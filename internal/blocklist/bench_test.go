package blocklist

import (
	"testing"
	"time"

	"unclean/internal/netaddr"
	"unclean/internal/netflow"
	"unclean/internal/stats"
)

func benchTrie(nRules int) *Trie {
	rng := stats.NewRNG(9)
	t := &Trie{}
	for i := 0; i < nRules; i++ {
		t.Insert(netaddr.Addr(rng.Uint32()).Block(16+rng.Intn(17)), "bench")
	}
	return t
}

func BenchmarkTrieInsert(b *testing.B) {
	rng := stats.NewRNG(10)
	blocks := make([]netaddr.Block, 10000)
	for i := range blocks {
		blocks[i] = netaddr.Addr(rng.Uint32()).Block(24)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := &Trie{}
		for _, blk := range blocks {
			t.Insert(blk, "x")
		}
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	t := benchTrie(10000)
	rng := stats.NewRNG(11)
	probes := make([]netaddr.Addr, 1024)
	for i := range probes {
		probes[i] = netaddr.Addr(rng.Uint32())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(probes[i%len(probes)])
	}
}

// BenchmarkEvaluate scores a 256k-flow log against a 10k-rule list — the
// sharded scorer path, which fans flow scoring out over all cores.
func BenchmarkEvaluate(b *testing.B) {
	t := benchTrie(10000)
	rng := stats.NewRNG(12)
	t0 := time.Date(2006, 10, 1, 0, 0, 0, 0, time.UTC)
	records := make([]netflow.Record, 1<<18)
	for i := range records {
		records[i] = netflow.Record{
			SrcAddr: netaddr.Addr(rng.Uint32()),
			DstAddr: netaddr.Addr(rng.Uint32()),
			Packets: 2, Octets: 96,
			First: t0, Last: t0.Add(time.Second),
			SrcPort: 2000, DstPort: 80, Proto: netflow.ProtoTCP,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := Evaluate(t, records)
		if e.FlowsBlocked+e.FlowsPassed != len(records) {
			b.Fatal("lost flows")
		}
	}
}

func BenchmarkTrieWalk(b *testing.B) {
	t := benchTrie(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		t.Walk(func(Entry) bool {
			n++
			return true
		})
		if n == 0 {
			b.Fatal("empty walk")
		}
	}
}

package blocklist

import (
	"testing"
	"testing/quick"
	"time"

	"unclean/internal/ipset"
	"unclean/internal/netaddr"
	"unclean/internal/netflow"
	"unclean/internal/stats"
)

func TestInsertLookup(t *testing.T) {
	var tr Trie
	if !tr.Insert(netaddr.MustParseBlock("10.1.0.0/16"), "outer") {
		t.Fatal("first insert should create")
	}
	if !tr.Insert(netaddr.MustParseBlock("10.1.2.0/24"), "inner") {
		t.Fatal("second insert should create")
	}
	if tr.Insert(netaddr.MustParseBlock("10.1.0.0/16"), "outer2") {
		t.Fatal("replacing insert should not create")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Longest prefix wins.
	e, ok := tr.Lookup(netaddr.MustParseAddr("10.1.2.77"))
	if !ok || e.Reason != "inner" {
		t.Fatalf("Lookup inner = %+v, %v", e, ok)
	}
	e, ok = tr.Lookup(netaddr.MustParseAddr("10.1.9.1"))
	if !ok || e.Reason != "outer2" {
		t.Fatalf("Lookup outer = %+v, %v", e, ok)
	}
	if _, ok := tr.Lookup(netaddr.MustParseAddr("11.0.0.1")); ok {
		t.Fatal("lookup outside rules matched")
	}
}

func TestDefaultRouteRule(t *testing.T) {
	var tr Trie
	tr.Insert(netaddr.MustParseBlock("0.0.0.0/0"), "default")
	if !tr.Blocks(netaddr.MustParseAddr("203.0.113.9")) {
		t.Fatal("/0 rule must match everything")
	}
	tr.Insert(netaddr.MustParseBlock("203.0.113.9/32"), "host")
	e, _ := tr.Lookup(netaddr.MustParseAddr("203.0.113.9"))
	if e.Reason != "host" {
		t.Fatal("/32 must beat /0")
	}
}

func TestRemove(t *testing.T) {
	var tr Trie
	tr.Insert(netaddr.MustParseBlock("10.1.0.0/16"), "x")
	tr.Insert(netaddr.MustParseBlock("10.1.2.0/24"), "y")
	if !tr.Remove(netaddr.MustParseBlock("10.1.2.0/24")) {
		t.Fatal("remove existing failed")
	}
	if tr.Remove(netaddr.MustParseBlock("10.1.2.0/24")) {
		t.Fatal("double remove succeeded")
	}
	if tr.Remove(netaddr.MustParseBlock("99.0.0.0/8")) {
		t.Fatal("removing absent rule succeeded")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// The outer rule still matches where the inner used to.
	e, ok := tr.Lookup(netaddr.MustParseAddr("10.1.2.3"))
	if !ok || e.Reason != "x" {
		t.Fatalf("after remove: %+v, %v", e, ok)
	}
}

func TestWalkAndEntries(t *testing.T) {
	var tr Trie
	blocks := []string{"10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/16", "10.1.0.0/24"}
	for _, b := range blocks {
		tr.Insert(netaddr.MustParseBlock(b), b)
	}
	entries := tr.Entries()
	if len(entries) != 4 {
		t.Fatalf("Entries = %d", len(entries))
	}
	// Walk order: by address, shorter prefix first at equal base.
	want := []string{"10.0.0.0/8", "10.1.0.0/16", "10.1.0.0/24", "192.168.0.0/16"}
	for i, e := range entries {
		if e.Block.String() != want[i] {
			t.Errorf("entry %d = %s, want %s", i, e.Block, want[i])
		}
	}
	// Early stop.
	count := 0
	tr.Walk(func(Entry) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early-stop walk visited %d", count)
	}
}

func TestLookupMatchesLinearScan(t *testing.T) {
	rng := stats.NewRNG(7)
	var tr Trie
	var entries []Entry
	for i := 0; i < 300; i++ {
		b := netaddr.Addr(rng.Uint32()).Block(8 + rng.Intn(25))
		tr.Insert(b, b.String())
		entries = append(entries, Entry{Block: b, Reason: b.String()})
	}
	f := func(raw uint32) bool {
		a := netaddr.Addr(raw)
		var best *Entry
		for i := range entries {
			e := &entries[i]
			if e.Block.Contains(a) && (best == nil || e.Block.Bits() > best.Block.Bits()) {
				best = e
			}
		}
		got, ok := tr.Lookup(a)
		if best == nil {
			return !ok
		}
		// Duplicate blocks overwrite; compare block only.
		return ok && got.Block == best.Block
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromSet(t *testing.T) {
	s := ipset.MustParse("10.1.1.1 10.1.1.200 10.2.2.2")
	tr := FromSet(s, 24, "unclean")
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2 /24 rules", tr.Len())
	}
	if !tr.Blocks(netaddr.MustParseAddr("10.1.1.99")) {
		t.Error("address in covered /24 not blocked")
	}
	if tr.Blocks(netaddr.MustParseAddr("10.1.2.1")) {
		t.Error("address outside covered /24s blocked")
	}
}

func flowFrom(src string, payload bool) netflow.Record {
	t0 := time.Date(2006, 10, 1, 0, 0, 0, 0, time.UTC)
	r := netflow.Record{
		SrcAddr: netaddr.MustParseAddr(src),
		DstAddr: netaddr.MustParseAddr("30.0.0.1"),
		First:   t0, Last: t0.Add(time.Second),
		Proto: netflow.ProtoTCP, SrcPort: 2000, DstPort: 80,
	}
	if payload {
		r.Packets, r.Octets = 10, 2000
		r.TCPFlags = netflow.FlagSYN | netflow.FlagACK | netflow.FlagPSH
	} else {
		r.Packets, r.Octets = 2, 96
		r.TCPFlags = netflow.FlagSYN
	}
	return r
}

func TestEvaluateAndScore(t *testing.T) {
	tr := FromSet(ipset.MustParse("10.1.1.1"), 24, "unclean")
	records := []netflow.Record{
		flowFrom("10.1.1.50", false), // blocked, hostile
		flowFrom("10.1.1.50", false),
		flowFrom("10.1.1.60", true), // blocked, innocent (collateral)
		flowFrom("20.0.0.1", true),  // passed, innocent
		flowFrom("20.0.0.2", false), // passed, hostile (missed)
	}
	e := Evaluate(tr, records)
	if e.FlowsBlocked != 3 || e.FlowsPassed != 2 {
		t.Fatalf("flows = %d/%d", e.FlowsBlocked, e.FlowsPassed)
	}
	if e.BlockedSources.Len() != 2 || e.PassedSources.Len() != 2 {
		t.Fatalf("sources = %d/%d", e.BlockedSources.Len(), e.PassedSources.Len())
	}
	if e.PayloadBlocked != 1 {
		t.Fatalf("PayloadBlocked = %d", e.PayloadBlocked)
	}
	hostile := ipset.MustParse("10.1.1.50 20.0.0.2")
	innocent := ipset.MustParse("10.1.1.60 20.0.0.1")
	c := e.Score(hostile, innocent)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.TPR() != 0.5 || c.FPR() != 0.5 {
		t.Fatalf("rates = %v/%v", c.TPR(), c.FPR())
	}
	if c.String() == "" {
		t.Error("empty String")
	}
}

// TestEvaluateShardedMatchesSequential drives Evaluate over a log large
// enough to trigger the parallel sharded scorer and checks the result
// against a forced single-shard scan of the same records.
func TestEvaluateShardedMatchesSequential(t *testing.T) {
	rng := stats.NewRNG(77)
	tr := &Trie{}
	for i := 0; i < 500; i++ {
		tr.Insert(netaddr.Addr(rng.Uint32()).Block(16+rng.Intn(9)), "test")
	}
	records := make([]netflow.Record, 4*evalShardCutoff)
	for i := range records {
		records[i] = flowFrom(netaddr.Addr(rng.Uint32()).String(), rng.Bool(0.3))
	}
	got := Evaluate(tr, records)
	want := evaluateShard(tr.Blocks, records)
	if got.FlowsBlocked != want.FlowsBlocked || got.FlowsPassed != want.FlowsPassed ||
		got.PayloadBlocked != want.PayloadBlocked {
		t.Fatalf("sharded counts %d/%d/%d, sequential %d/%d/%d",
			got.FlowsBlocked, got.FlowsPassed, got.PayloadBlocked,
			want.FlowsBlocked, want.FlowsPassed, want.PayloadBlocked)
	}
	if !got.BlockedSources.Equal(want.BlockedSources) || !got.PassedSources.Equal(want.PassedSources) {
		t.Fatal("sharded source sets differ from sequential scan")
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.TPR() != 0 || c.FPR() != 0 {
		t.Error("degenerate rates should be 0")
	}
}

func TestTrieString(t *testing.T) {
	var tr Trie
	tr.Insert(netaddr.MustParseBlock("10.0.0.0/8"), "x")
	if got := tr.String(); got != "blocklist[10.0.0.0/8]" {
		t.Errorf("String = %q", got)
	}
	for i := 0; i < 20; i++ {
		tr.Insert(netaddr.MakeAddr(byte(i), 0, 0, 0).Block(8), "x")
	}
	if got := tr.String(); got != "blocklist(20 rules)" {
		t.Errorf("large String = %q", got)
	}
}

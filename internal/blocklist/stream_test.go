package blocklist

import (
	"testing"

	"unclean/internal/ipset"
	"unclean/internal/netaddr"
	"unclean/internal/netflow"
	"unclean/internal/stats"
)

// streamLog builds a log with heavy source repetition (the streaming
// evaluators' cache hit path) alongside one-off sources.
func streamLog(rng *stats.RNG, n int) []netflow.Record {
	// A pool of repeat offenders plus fresh addresses.
	pool := make([]netaddr.Addr, 200)
	for i := range pool {
		pool[i] = netaddr.Addr(rng.Uint32())
	}
	records := make([]netflow.Record, n)
	for i := range records {
		var src netaddr.Addr
		if rng.Bool(0.7) {
			src = pool[rng.Intn(len(pool))]
		} else {
			src = netaddr.Addr(rng.Uint32())
		}
		records[i] = flowFrom(src.String(), rng.Bool(0.3))
	}
	return records
}

func evalsEqual(a, b Eval) bool {
	return a.FlowsBlocked == b.FlowsBlocked &&
		a.FlowsPassed == b.FlowsPassed &&
		a.PayloadBlocked == b.PayloadBlocked &&
		a.BlockedSources.Equal(b.BlockedSources) &&
		a.PassedSources.Equal(b.PassedSources)
}

// TestEvaluatorMatchesEvaluate streams the log in uneven chunks and
// checks the accumulated Eval is identical to both the one-shot compiled
// path and the seed trie-scan path.
func TestEvaluatorMatchesEvaluate(t *testing.T) {
	rng := stats.NewRNG(5)
	tr := randomTrie(rng, 400)
	records := streamLog(rng, 30000)

	want := Evaluate(tr, records)
	if trieWant := evaluateTrie(tr, records); !evalsEqual(want, trieWant) {
		t.Fatal("compiled Evaluate differs from the seed trie scan")
	}

	ev := NewEvaluator(Compile(tr))
	for off := 0; off < len(records); {
		end := min(off+1+rng.Intn(4000), len(records))
		ev.Consume(records[off:end])
		off = end
	}
	got := ev.Result()
	if !evalsEqual(got, want) {
		t.Fatalf("streaming Eval differs from in-memory:\n got %d/%d/%d blocked=%d passed=%d\nwant %d/%d/%d blocked=%d passed=%d",
			got.FlowsBlocked, got.FlowsPassed, got.PayloadBlocked, got.BlockedSources.Len(), got.PassedSources.Len(),
			want.FlowsBlocked, want.FlowsPassed, want.PayloadBlocked, want.BlockedSources.Len(), want.PassedSources.Len())
	}

	// Result must not disturb further accumulation.
	ev.Consume(records[:100])
	again := ev.Result()
	if again.FlowsBlocked+again.FlowsPassed != want.FlowsBlocked+want.FlowsPassed+100 {
		t.Fatal("Consume after Result lost flows")
	}
}

// TestSweepEvaluatorMatchesPerListEvaluate checks the one-pass sweep
// produces, for every n, exactly the Eval a standalone Evaluate against
// C_n would.
func TestSweepEvaluatorMatchesPerListEvaluate(t *testing.T) {
	rng := stats.NewRNG(13)
	b := ipset.NewBuilder(0)
	for i := 0; i < 300; i++ {
		b.Add(netaddr.Addr(rng.Uint32()))
	}
	seed := b.Build()
	const lo, hi = 24, 32
	ms, err := SweepSet(seed, lo, hi)
	if err != nil {
		t.Fatal(err)
	}

	// Half the traffic comes from inside the seed's /20 neighbourhoods so
	// the sweep actually blocks something at every n.
	records := make([]netflow.Record, 20000)
	for i := range records {
		var src netaddr.Addr
		if rng.Bool(0.5) {
			src = seed.At(rng.Intn(seed.Len()))&^0xfff | netaddr.Addr(rng.Uint32()&0xfff)
		} else {
			src = netaddr.Addr(rng.Uint32())
		}
		records[i] = flowFrom(src.String(), rng.Bool(0.3))
	}

	sv := NewSweepEvaluator(ms)
	for off := 0; off < len(records); {
		end := min(off+1+rng.Intn(3000), len(records))
		sv.Consume(records[off:end])
		off = end
	}
	got := sv.Results()
	if len(got) != hi-lo+1 {
		t.Fatalf("Results returned %d evals, want %d", len(got), hi-lo+1)
	}
	if sv.Sources() == 0 {
		t.Fatal("Sources = 0 after consuming traffic")
	}
	anyBlocked := false
	for n := lo; n <= hi; n++ {
		want := Evaluate(FromSet(seed, n, "sweep"), records)
		if !evalsEqual(got[n-lo], want) {
			t.Fatalf("sweep Eval at /%d differs from standalone Evaluate", n)
		}
		if got[n-lo].FlowsBlocked > 0 {
			anyBlocked = true
		}
	}
	if !anyBlocked {
		t.Fatal("sweep blocked nothing; test traffic is not exercising the matcher")
	}
}

package blocklist

import (
	"testing"
	"time"

	"unclean/internal/ipset"
	"unclean/internal/netaddr"
	"unclean/internal/netflow"
)

func TestPolicyPrecedence(t *testing.T) {
	deny := FromSet(ipset.MustParse("10.1.1.1"), 24, "unclean")
	allow := &Trie{}
	allow.Insert(netaddr.MustParseBlock("10.1.1.80/32"), "partner mail server")
	p := NewPolicy(allow, deny)

	// Denied by the /24, no allow match.
	if v, e := p.Decide(netaddr.MustParseAddr("10.1.1.5")); v != Denied || e.Reason != "unclean" {
		t.Fatalf("verdict = %v (%+v)", v, e)
	}
	// The /32 allow overrides the /24 deny.
	if v, e := p.Decide(netaddr.MustParseAddr("10.1.1.80")); v != Allowed || e.Reason != "partner mail server" {
		t.Fatalf("verdict = %v (%+v)", v, e)
	}
	// Untouched space.
	if v, _ := p.Decide(netaddr.MustParseAddr("99.9.9.9")); v != NoMatch {
		t.Fatalf("verdict = %v", v)
	}
}

func TestPolicyEqualSpecificityAllowsWins(t *testing.T) {
	allow := FromSet(ipset.MustParse("10.1.1.1"), 24, "allow")
	deny := FromSet(ipset.MustParse("10.1.1.1"), 24, "deny")
	p := NewPolicy(allow, deny)
	if v, _ := p.Decide(netaddr.MustParseAddr("10.1.1.200")); v != Allowed {
		t.Fatalf("tie verdict = %v, want Allowed", v)
	}
}

func TestPolicyDenyMoreSpecificWins(t *testing.T) {
	allow := FromSet(ipset.MustParse("10.1.1.1"), 16, "allow region")
	deny := FromSet(ipset.MustParse("10.1.1.1"), 24, "deny block")
	p := NewPolicy(allow, deny)
	if v, _ := p.Decide(netaddr.MustParseAddr("10.1.1.200")); v != Denied {
		t.Fatalf("verdict = %v, want Denied (longer deny)", v)
	}
	if v, _ := p.Decide(netaddr.MustParseAddr("10.1.99.1")); v != Allowed {
		t.Fatalf("verdict = %v, want Allowed (outside deny /24)", v)
	}
}

func TestPolicyNilLists(t *testing.T) {
	p := NewPolicy(nil, nil)
	if v, _ := p.Decide(netaddr.MustParseAddr("1.2.3.4")); v != NoMatch {
		t.Fatalf("verdict = %v", v)
	}
}

func TestPolicyApply(t *testing.T) {
	t0 := time.Date(2006, 10, 1, 0, 0, 0, 0, time.UTC)
	mk := func(src string, payload bool) netflow.Record {
		r := netflow.Record{
			SrcAddr: netaddr.MustParseAddr(src),
			DstAddr: netaddr.MustParseAddr("30.0.0.1"),
			First:   t0, Last: t0.Add(time.Second),
			Proto: netflow.ProtoTCP, SrcPort: 2000, DstPort: 80,
		}
		if payload {
			r.Packets, r.Octets = 10, 2500
			r.TCPFlags = netflow.FlagSYN | netflow.FlagACK | netflow.FlagPSH
		} else {
			r.Packets, r.Octets = 2, 96
			r.TCPFlags = netflow.FlagSYN
		}
		return r
	}
	deny := FromSet(ipset.MustParse("10.1.1.1"), 24, "unclean")
	allow := &Trie{}
	allow.Insert(netaddr.MustParseBlock("10.1.1.80/32"), "partner")
	p := NewPolicy(allow, deny)
	eval := p.Apply([]netflow.Record{
		mk("10.1.1.5", false), // denied
		mk("10.1.1.5", true),  // denied, payload collateral
		mk("10.1.1.80", true), // allowed
		mk("99.9.9.9", true),  // unmatched
	})
	if eval.FlowsDenied != 2 || eval.PayloadDenied != 1 || eval.FlowsAllowed != 1 || eval.FlowsUnmatched != 1 {
		t.Fatalf("eval = %+v", eval)
	}
	if eval.String() == "" {
		t.Error("empty String")
	}
}

func TestVerdictString(t *testing.T) {
	if NoMatch.String() != "no-match" || Allowed.String() != "allowed" || Denied.String() != "denied" {
		t.Error("verdict names wrong")
	}
	if Verdict(9).String() != "unknown" {
		t.Error("out-of-range verdict name")
	}
}

package blocklist

import (
	"testing"

	"unclean/internal/ipset"
	"unclean/internal/netaddr"
	"unclean/internal/stats"
)

// randomTrie builds a rule set spanning the whole prefix spectrum,
// including short (< /16) fan-out rules and deeply nested chains.
func randomTrie(rng *stats.RNG, n int) *Trie {
	tr := &Trie{}
	for i := 0; i < n; i++ {
		bits := 8 + rng.Intn(25) // /8 .. /32
		tr.Insert(netaddr.Addr(rng.Uint32()).Block(bits), "r")
	}
	return tr
}

// probeAddrs yields addresses that stress a rule set: every rule's
// boundary addresses plus random ones.
func probeAddrs(tr *Trie, rng *stats.RNG, extra int) []netaddr.Addr {
	var addrs []netaddr.Addr
	tr.Walk(func(e Entry) bool {
		b := e.Block
		addrs = append(addrs, b.Base(), b.Last(), b.Base()-1, b.Last()+1)
		return true
	})
	for i := 0; i < extra; i++ {
		addrs = append(addrs, netaddr.Addr(rng.Uint32()))
	}
	return addrs
}

func TestMatcherMatchesTrie(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 99} {
		rng := stats.NewRNG(seed)
		tr := randomTrie(rng, 300)
		m := Compile(tr)
		if m.Len() != tr.Len() {
			t.Fatalf("seed %d: compiled %d rules, trie has %d", seed, m.Len(), tr.Len())
		}
		for _, a := range probeAddrs(tr, rng, 5000) {
			we, wok := tr.Lookup(a)
			ge, gok := m.Lookup(a)
			if wok != gok {
				t.Fatalf("seed %d: Lookup(%v) matched=%v, trie says %v", seed, a, gok, wok)
			}
			if wok && ge.Block != we.Block {
				t.Fatalf("seed %d: Lookup(%v) = %v, trie says %v", seed, a, ge.Block, we.Block)
			}
			if m.Blocks(a) != tr.Blocks(a) {
				t.Fatalf("seed %d: Blocks(%v) disagrees with trie", seed, a)
			}
		}
	}
}

func TestMatcherLongestMatchWins(t *testing.T) {
	tr := &Trie{}
	tr.Insert(netaddr.MustParseBlock("10.0.0.0/8"), "eight")
	tr.Insert(netaddr.MustParseBlock("10.1.0.0/16"), "sixteen")
	tr.Insert(netaddr.MustParseBlock("10.1.2.0/24"), "twentyfour")
	tr.Insert(netaddr.MustParseBlock("10.1.2.3/32"), "host")
	m := Compile(tr)
	for addr, want := range map[string]string{
		"10.9.9.9":   "eight",
		"10.1.9.9":   "sixteen",
		"10.1.2.9":   "twentyfour",
		"10.1.2.3":   "host",
		"10.1.3.1":   "sixteen",
		"10.255.0.1": "eight",
	} {
		e, ok := m.Lookup(netaddr.MustParseAddr(addr))
		if !ok || e.Reason != want {
			t.Errorf("Lookup(%s) = %q (ok=%v), want %q", addr, e.Reason, ok, want)
		}
	}
	if _, ok := m.Lookup(netaddr.MustParseAddr("11.0.0.1")); ok {
		t.Error("Lookup outside all rules matched")
	}
}

func TestMatcherEmpty(t *testing.T) {
	m := Compile(&Trie{})
	if m.Blocks(netaddr.MustParseAddr("1.2.3.4")) {
		t.Error("empty matcher blocked an address")
	}
	if _, ok := m.Lookup(0); ok {
		t.Error("empty matcher matched address 0")
	}
	if m.String() == "" {
		t.Error("empty String")
	}
}

func TestMatcherShortPrefixCount(t *testing.T) {
	tr := &Trie{}
	tr.Insert(netaddr.MustParseBlock("10.0.0.0/8"), "a")
	tr.Insert(netaddr.MustParseBlock("172.16.0.0/12"), "b")
	tr.Insert(netaddr.MustParseBlock("192.168.0.0/16"), "c")
	tr.Insert(netaddr.MustParseBlock("192.168.1.0/24"), "d")
	m := Compile(tr)
	if got := m.ShortPrefixRules(); got != 2 {
		t.Errorf("ShortPrefixRules = %d, want 2", got)
	}
}

func TestMatcherLookupNoAlloc(t *testing.T) {
	rng := stats.NewRNG(7)
	m := Compile(randomTrie(rng, 1000))
	addr := netaddr.Addr(rng.Uint32())
	if avg := testing.AllocsPerRun(100, func() {
		m.Lookup(addr)
		m.Blocks(addr)
		addr += 7919
	}); avg != 0 {
		t.Errorf("Lookup allocates %.1f per run, want 0", avg)
	}
}

func TestCompileSetMatchesTries(t *testing.T) {
	rng := stats.NewRNG(42)
	lists := make([]*Trie, 5)
	for i := range lists {
		lists[i] = randomTrie(rng, 120)
	}
	ms, err := CompileSet(lists)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Lists() != len(lists) {
		t.Fatalf("Lists = %d, want %d", ms.Lists(), len(lists))
	}
	for _, tr := range lists {
		for _, a := range probeAddrs(tr, rng, 0) {
			mask := ms.Mask(a)
			for i, l := range lists {
				if got, want := mask>>uint(i)&1 == 1, l.Blocks(a); got != want {
					t.Fatalf("Mask(%v) bit %d = %v, trie says %v", a, i, got, want)
				}
			}
		}
	}
	for i := 0; i < 5000; i++ {
		a := netaddr.Addr(rng.Uint32())
		mask := ms.Mask(a)
		for j, l := range lists {
			if got, want := mask>>uint(j)&1 == 1, l.Blocks(a); got != want {
				t.Fatalf("Mask(%v) bit %d = %v, trie says %v", a, j, got, want)
			}
		}
	}
}

func TestCompileSetTooManyLists(t *testing.T) {
	lists := make([]*Trie, 33)
	for i := range lists {
		lists[i] = &Trie{}
	}
	if _, err := CompileSet(lists); err == nil {
		t.Fatal("CompileSet accepted 33 lists")
	}
}

func TestSweepSetMatchesFromSet(t *testing.T) {
	rng := stats.NewRNG(11)
	b := ipset.NewBuilder(0)
	for i := 0; i < 400; i++ {
		b.Add(netaddr.Addr(rng.Uint32()))
	}
	seed := b.Build()
	const lo, hi = 24, 32
	ms, err := SweepSet(seed, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	tries := make([]*Trie, 0, hi-lo+1)
	for n := lo; n <= hi; n++ {
		tries = append(tries, FromSet(seed, n, "sweep"))
	}
	for i := 0; i < 20000; i++ {
		a := netaddr.Addr(rng.Uint32())
		mask := ms.Mask(a)
		for j, tr := range tries {
			if got, want := mask>>uint(j)&1 == 1, tr.Blocks(a); got != want {
				t.Fatalf("Mask(%v) bit /%d = %v, trie says %v", a, lo+j, got, want)
			}
		}
	}
	// Every seed address must be in every C_n of its own sweep.
	want := uint32(1)<<(hi-lo+1) - 1
	seed.Each(func(a netaddr.Addr) bool {
		if ms.Mask(a) != want {
			t.Fatalf("Mask(%v) = %b for a seed address, want %b", a, ms.Mask(a), want)
		}
		return true
	})
}

func TestSweepSetRangeValidation(t *testing.T) {
	var empty ipset.Set
	for _, r := range [][2]int{{-1, 8}, {8, 33}, {20, 10}} {
		if _, err := SweepSet(empty, r[0], r[1]); err == nil {
			t.Errorf("SweepSet(%d, %d) accepted invalid range", r[0], r[1])
		}
	}
}

// FuzzMatcherLookup is the differential fuzz harness: a seeded random
// rule set is compiled and the matcher must agree with the reference
// trie on the fuzzed address and its rule-boundary neighbours.
func FuzzMatcherLookup(f *testing.F) {
	f.Add(uint64(1), uint32(0), uint16(50))
	f.Add(uint64(2), uint32(0xc0a80101), uint16(1))
	f.Add(uint64(3), uint32(0xffffffff), uint16(300))
	f.Add(uint64(99), uint32(0x0a000001), uint16(31))
	f.Fuzz(func(t *testing.T, seed uint64, addr uint32, nRules uint16) {
		rng := stats.NewRNG(seed)
		tr := randomTrie(rng, int(nRules%512))
		m := Compile(tr)
		ms, err := CompileSet([]*Trie{tr})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range []netaddr.Addr{
			netaddr.Addr(addr), netaddr.Addr(addr) - 1, netaddr.Addr(addr) + 1,
			netaddr.Addr(addr ^ 0x80000000), netaddr.Addr(rng.Uint32()),
		} {
			we, wok := tr.Lookup(a)
			ge, gok := m.Lookup(a)
			if wok != gok || (wok && ge.Block != we.Block) {
				t.Fatalf("matcher Lookup(%v) = (%v, %v), trie says (%v, %v)", a, ge.Block, gok, we.Block, wok)
			}
			if got, want := ms.Mask(a) == 1, tr.Blocks(a); got != want {
				t.Fatalf("set Mask(%v) = %v, trie says %v", a, got, want)
			}
		}
	})
}

package blocklist

import "unclean/internal/obs"

// Package-level observability: the compiled-matcher pipeline reports how
// much it compiles and how fast it scores. Rates derive from the
// counters at scrape time (flows/sec = rate(unclean_blocklist_eval_flows_total));
// the lookup-latency histogram carries the amortized per-lookup cost
// observed on each evaluated chunk, so /metrics shows serving-path LPM
// latency without timing individual probes on the hot path.
var (
	logger = obs.Logger("blocklist")

	compileSeconds = obs.Default().Histogram("unclean_blocklist_compile_seconds",
		"Time to compile a trie into a flat matcher or matcher set.")
	compileRules = obs.Default().Counter("unclean_blocklist_compile_rules_total",
		"Rules compiled into flat matchers.")
	compileShortPrefix = obs.Default().Counter("unclean_blocklist_compile_short_prefix_total",
		"Compiled rules shorter than /16, fan-out expanded across the root table (the DIR-24-8 slow-path population).")

	evalFlows = obs.Default().Counter("unclean_blocklist_eval_flows_total",
		"Flow records scored against compiled blocklists; rate() of this series is the flows/sec throughput.")
	evalSeconds = obs.Default().Histogram("unclean_blocklist_eval_chunk_seconds",
		"Wall time scoring one chunk of flow records.")
	lookupSeconds = obs.Default().Histogram("unclean_blocklist_lookup_seconds",
		"Amortized per-flow LPM lookup latency, observed once per evaluated chunk.")
)

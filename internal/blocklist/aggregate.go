package blocklist

import (
	"sort"

	"unclean/internal/netaddr"
)

// Aggregate returns a minimized blocklist covering exactly the same
// addresses: rules already covered by a shorter-prefix rule are dropped,
// and complementary sibling rules are merged into their parent,
// recursively. Operational lists distributed to routers and DNSBL
// mirrors are aggregated first — the /24 expansion of a report routinely
// contains mergeable runs.
//
// Reasons are preserved when the merged rules agree and replaced with
// "aggregated" otherwise.
func (t *Trie) Aggregate() *Trie {
	entries := t.Entries()
	// Shorter prefixes first so covered rules can be dropped in one pass.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Block.Bits() != entries[j].Block.Bits() {
			return entries[i].Block.Bits() < entries[j].Block.Bits()
		}
		return entries[i].Block.Base() < entries[j].Block.Base()
	})
	cover := &Trie{}
	reasons := make(map[netaddr.Block]string)
	for _, e := range entries {
		if cover.Blocks(e.Block.Base()) {
			continue // a shorter rule already covers this block entirely
		}
		cover.Insert(e.Block, e.Reason)
		reasons[e.Block] = e.Reason
	}
	// Iteratively merge complementary siblings.
	for {
		merged := false
		for b, reason := range reasons {
			if b.Bits() == 0 {
				continue
			}
			sib := siblingOf(b)
			sibReason, ok := reasons[sib]
			if !ok {
				continue
			}
			parent := b.Parent()
			newReason := reason
			if sibReason != reason {
				newReason = "aggregated"
			}
			delete(reasons, b)
			delete(reasons, sib)
			reasons[parent] = newReason
			merged = true
			break // the map changed; restart iteration
		}
		if !merged {
			break
		}
	}
	out := &Trie{}
	for b, reason := range reasons {
		out.Insert(b, reason)
	}
	return out
}

// siblingOf returns the block differing from b only in its last prefix
// bit.
func siblingOf(b netaddr.Block) netaddr.Block {
	bit := netaddr.Addr(1) << (32 - uint(b.Bits()))
	return (b.Base() ^ bit).Block(b.Bits())
}

// CoversSameAddresses reports whether two blocklists block exactly the
// same address set; used to validate aggregation. It compares the
// canonical disjoint cover of both lists.
func CoversSameAddresses(a, b *Trie) bool {
	return canonicalCover(a) == canonicalCover(b)
}

// canonicalCover renders the list's covered space as a canonical string
// of disjoint, fully-merged blocks.
func canonicalCover(t *Trie) string {
	agg := t.Aggregate()
	blocks := make([]netaddr.Block, 0, agg.Len())
	agg.Walk(func(e Entry) bool {
		blocks = append(blocks, e.Block)
		return true
	})
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Compare(blocks[j]) < 0 })
	s := ""
	for _, b := range blocks {
		s += b.String() + " "
	}
	return s
}

package blocklist

import (
	"slices"
	"strings"

	"unclean/internal/netaddr"
)

// Aggregate returns a minimized blocklist covering exactly the same
// addresses: rules already covered by a shorter-prefix rule are dropped,
// and complementary sibling rules are merged into their parent,
// recursively. Operational lists distributed to routers and DNSBL
// mirrors are aggregated first — the /24 expansion of a report routinely
// contains mergeable runs.
//
// Reasons are preserved when the merged rules agree and replaced with
// "aggregated" otherwise. The pass is deterministic: rules are bucketed
// by prefix length and merged bottom-up (longest prefixes first, each
// level in base-address order), so the same input always yields the same
// output regardless of insertion or map iteration order.
func (t *Trie) Aggregate() *Trie {
	entries := t.Entries()
	// Shorter prefixes first so covered rules can be dropped in one pass.
	slices.SortFunc(entries, compareEntries)
	cover := &Trie{}
	var levels [33][]Entry // surviving rules bucketed by prefix length
	for _, e := range entries {
		if cover.Blocks(e.Block.Base()) {
			continue // a shorter rule already covers this block entirely
		}
		cover.Insert(e.Block, e.Reason)
		levels[e.Block.Bits()] = append(levels[e.Block.Bits()], e)
	}
	// Bottom-up sibling merge: walk levels from /32 to /1; within a level
	// blocks are disjoint and equally sized, so after sorting by base a
	// complementary pair is always adjacent. A merged pair becomes a
	// parent entry one level up, where it may merge again. No merge
	// candidate is ever missed and no map is iterated, so the result is
	// canonical.
	out := &Trie{}
	for bits := 32; bits >= 1; bits-- {
		lvl := levels[bits]
		slices.SortFunc(lvl, compareEntries)
		for i := 0; i < len(lvl); i++ {
			e := lvl[i]
			if i+1 < len(lvl) && lvl[i+1].Block == siblingOf(e.Block) {
				reason := e.Reason
				if lvl[i+1].Reason != reason {
					reason = "aggregated"
				}
				levels[bits-1] = append(levels[bits-1], Entry{Block: e.Block.Parent(), Reason: reason})
				i++ // the sibling is consumed by the merge
				continue
			}
			out.Insert(e.Block, e.Reason)
		}
	}
	for _, e := range levels[0] {
		out.Insert(e.Block, e.Reason)
	}
	return out
}

// compareEntries orders by prefix length, then base address.
func compareEntries(a, b Entry) int {
	if c := a.Block.Bits() - b.Block.Bits(); c != 0 {
		return c
	}
	if a.Block.Base() != b.Block.Base() {
		if a.Block.Base() < b.Block.Base() {
			return -1
		}
		return 1
	}
	return 0
}

// siblingOf returns the block differing from b only in its last prefix
// bit.
func siblingOf(b netaddr.Block) netaddr.Block {
	bit := netaddr.Addr(1) << (32 - uint(b.Bits()))
	return (b.Base() ^ bit).Block(b.Bits())
}

// CoversSameAddresses reports whether two blocklists block exactly the
// same address set; used to validate aggregation. It compares the
// canonical disjoint cover of both lists.
func CoversSameAddresses(a, b *Trie) bool {
	return canonicalCover(a) == canonicalCover(b)
}

// canonicalCover renders the list's covered space as a canonical string
// of disjoint, fully-merged blocks.
func canonicalCover(t *Trie) string {
	agg := t.Aggregate()
	blocks := make([]netaddr.Block, 0, agg.Len())
	agg.Walk(func(e Entry) bool {
		blocks = append(blocks, e.Block)
		return true
	})
	slices.SortFunc(blocks, netaddr.Block.Compare)
	var sb strings.Builder
	for _, b := range blocks {
		sb.WriteString(b.String())
		sb.WriteByte(' ')
	}
	return sb.String()
}

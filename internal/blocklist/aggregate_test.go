package blocklist

import (
	"testing"
	"testing/quick"

	"unclean/internal/netaddr"
	"unclean/internal/stats"
)

func TestAggregateMergesSiblings(t *testing.T) {
	var tr Trie
	tr.Insert(netaddr.MustParseBlock("10.1.0.0/24"), "bot")
	tr.Insert(netaddr.MustParseBlock("10.1.1.0/24"), "bot")
	agg := tr.Aggregate()
	if agg.Len() != 1 {
		t.Fatalf("Len = %d, want 1", agg.Len())
	}
	e, ok := agg.Lookup(netaddr.MustParseAddr("10.1.1.5"))
	if !ok || e.Block.String() != "10.1.0.0/23" || e.Reason != "bot" {
		t.Fatalf("merged entry = %+v, %v", e, ok)
	}
}

func TestAggregateCascades(t *testing.T) {
	// Four adjacent /24s collapse into one /22.
	var tr Trie
	for i := 0; i < 4; i++ {
		tr.Insert(netaddr.MakeAddr(10, 1, byte(i), 0).Block(24), "x")
	}
	agg := tr.Aggregate()
	if agg.Len() != 1 {
		t.Fatalf("Len = %d, want 1", agg.Len())
	}
	if e, _ := agg.Lookup(netaddr.MustParseAddr("10.1.3.9")); e.Block.String() != "10.1.0.0/22" {
		t.Fatalf("entry = %+v", e)
	}
}

func TestAggregateDropsCoveredRules(t *testing.T) {
	var tr Trie
	tr.Insert(netaddr.MustParseBlock("10.0.0.0/8"), "outer")
	tr.Insert(netaddr.MustParseBlock("10.1.1.0/24"), "inner")
	agg := tr.Aggregate()
	if agg.Len() != 1 {
		t.Fatalf("Len = %d, want 1", agg.Len())
	}
	if e, _ := agg.Lookup(netaddr.MustParseAddr("10.1.1.1")); e.Reason != "outer" {
		t.Fatalf("entry = %+v", e)
	}
}

func TestAggregateMixedReasons(t *testing.T) {
	var tr Trie
	tr.Insert(netaddr.MustParseBlock("10.1.0.0/24"), "bot")
	tr.Insert(netaddr.MustParseBlock("10.1.1.0/24"), "spam")
	agg := tr.Aggregate()
	if agg.Len() != 1 {
		t.Fatalf("Len = %d", agg.Len())
	}
	if e, _ := agg.Lookup(netaddr.MustParseAddr("10.1.0.1")); e.Reason != "aggregated" {
		t.Fatalf("reason = %q", e.Reason)
	}
}

func TestAggregateNonAdjacentStay(t *testing.T) {
	var tr Trie
	tr.Insert(netaddr.MustParseBlock("10.1.0.0/24"), "x")
	tr.Insert(netaddr.MustParseBlock("10.1.2.0/24"), "x") // not a sibling of 10.1.0.0/24
	agg := tr.Aggregate()
	if agg.Len() != 2 {
		t.Fatalf("Len = %d, want 2", agg.Len())
	}
}

func TestAggregatePreservesCoverage(t *testing.T) {
	f := func(raw []uint32, bitsRaw []uint8) bool {
		var tr Trie
		for i, u := range raw {
			if i >= len(bitsRaw) {
				break
			}
			bits := 8 + int(bitsRaw[i]%25) // /8../32
			tr.Insert(netaddr.Addr(u).Block(bits), "r")
		}
		agg := tr.Aggregate()
		if agg.Len() > tr.Len() {
			return false
		}
		// Membership must be identical for probes around every rule edge
		// and for random addresses.
		probes := []netaddr.Addr{0, ^netaddr.Addr(0)}
		tr.Walk(func(e Entry) bool {
			probes = append(probes, e.Block.Base(), e.Block.Last(), e.Block.Base()-1, e.Block.Last()+1)
			return true
		})
		rng := stats.NewRNG(7)
		for i := 0; i < 64; i++ {
			probes = append(probes, netaddr.Addr(rng.Uint32()))
		}
		for _, p := range probes {
			if tr.Blocks(p) != agg.Blocks(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateIdempotent(t *testing.T) {
	var tr Trie
	for i := 0; i < 8; i++ {
		tr.Insert(netaddr.MakeAddr(10, byte(i), 0, 0).Block(17), "x")
	}
	once := tr.Aggregate()
	twice := once.Aggregate()
	if once.Len() != twice.Len() {
		t.Fatalf("not idempotent: %d vs %d", once.Len(), twice.Len())
	}
	if !CoversSameAddresses(once, twice) || !CoversSameAddresses(&tr, once) {
		t.Fatal("coverage changed")
	}
}

// TestAggregateDeterministic pins the output of Aggregate — blocks AND
// reasons — across repeated runs and across insertion orders. The seed
// implementation restarted a map iteration after every merge, so
// multi-level mixed-reason merges could land different reasons from run
// to run; the bottom-up pass must not.
func TestAggregateDeterministic(t *testing.T) {
	rules := []struct {
		block  string
		reason string
	}{
		{"10.1.0.0/24", "bot"},
		{"10.1.1.0/24", "spam"},
		{"10.1.2.0/24", "bot"},
		{"10.1.3.0/24", "bot"},
		{"10.2.0.0/25", "scan"},
		{"10.2.0.128/25", "scan"},
		{"192.168.0.0/17", "x"},
		{"192.168.128.0/17", "y"},
	}
	rng := stats.NewRNG(3)
	var want string
	for trial := 0; trial < 50; trial++ {
		order := rng.Perm(len(rules))
		var tr Trie
		for _, i := range order {
			tr.Insert(netaddr.MustParseBlock(rules[i].block), rules[i].reason)
		}
		got := tr.Aggregate().String()
		if trial == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("trial %d: aggregate output changed with insertion order:\n got %q\nwant %q", trial, got, want)
		}
	}
	// The pinned expectations: same-reason runs keep their reason,
	// mixed-reason merges become "aggregated".
	var tr Trie
	for _, r := range rules {
		tr.Insert(netaddr.MustParseBlock(r.block), r.reason)
	}
	agg := tr.Aggregate()
	if agg.Len() != 3 {
		t.Fatalf("Len = %d, want 3", agg.Len())
	}
	for addr, reason := range map[string]string{
		"10.1.2.7":      "aggregated", // bot+spam+bot+bot /22
		"10.2.0.200":    "scan",       // scan+scan /24
		"192.168.77.77": "aggregated", // x+y /16
	} {
		if e, ok := agg.Lookup(netaddr.MustParseAddr(addr)); !ok || e.Reason != reason {
			t.Errorf("Lookup(%s) = %+v (ok=%v), want reason %q", addr, e, ok, reason)
		}
	}
}

func TestCoversSameAddresses(t *testing.T) {
	var a, b, c Trie
	a.Insert(netaddr.MustParseBlock("10.1.0.0/23"), "x")
	b.Insert(netaddr.MustParseBlock("10.1.0.0/24"), "y")
	b.Insert(netaddr.MustParseBlock("10.1.1.0/24"), "z")
	c.Insert(netaddr.MustParseBlock("10.1.0.0/24"), "y")
	if !CoversSameAddresses(&a, &b) {
		t.Error("equivalent lists reported different")
	}
	if CoversSameAddresses(&a, &c) {
		t.Error("different lists reported equivalent")
	}
}

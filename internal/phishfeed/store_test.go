package phishfeed

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"unclean/internal/faults"
	"unclean/internal/netaddr"
	"unclean/internal/retry"
)

func storeSampleFeed() *Feed {
	f := &Feed{}
	day := time.Date(2006, 10, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 20; i++ {
		a := netaddr.MustParseAddr("81.2.3.4") + netaddr.Addr(i)
		f.Add(Incident{Reported: day.AddDate(0, 0, i%7), URL: LureURL("bank", a, uint32(i)), Addr: a})
	}
	return f
}

func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "phish.feed")
	f := storeSampleFeed()
	if err := f.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "#crc32:") {
		t.Fatal("feed file missing CRC trailer")
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != f.Len() {
		t.Fatalf("incidents: %d vs %d", got.Len(), f.Len())
	}
	// Corruption is detected, not half-parsed.
	raw[len(raw)/3] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("corrupted feed accepted")
	}
}

// ReadRetry rides out transient source failures deterministically: a
// seeded flaky reader that fails whole attempts is retried until one
// attempt survives end to end.
func TestReadRetryHealsTransientSource(t *testing.T) {
	var rendered strings.Builder
	if err := storeSampleFeed().Write(&rendered); err != nil {
		t.Fatal(err)
	}
	attempts := 0
	open := func() (io.ReadCloser, error) {
		attempts++
		if attempts <= 2 {
			// First two attempts: source down entirely.
			return nil, faults.ErrTransient
		}
		// Third: flaky mid-stream (short reads are fine; an error kills
		// the attempt and forces another open).
		cfg := faults.ReaderConfig{ShortRead: 0.5}
		if attempts == 3 {
			cfg.ErrRate = 1 // fails immediately
		}
		return io.NopCloser(faults.NewFlakyReader(strings.NewReader(rendered.String()), cfg, uint64(attempts))), nil
	}
	p := retry.Policy{MaxAttempts: 6, BaseDelay: time.Millisecond,
		Sleep: func(context.Context, time.Duration) error { return nil }}
	feed, err := ReadRetry(context.Background(), p, open)
	if err != nil {
		t.Fatal(err)
	}
	if feed.Len() != storeSampleFeed().Len() {
		t.Fatalf("incidents = %d, want %d", feed.Len(), storeSampleFeed().Len())
	}
	if attempts != 4 {
		t.Fatalf("attempts = %d, want 4", attempts)
	}
}

// A malformed feed is permanent: no point retrying a parse error.
func TestReadRetryParseErrorIsPermanent(t *testing.T) {
	attempts := 0
	open := func() (io.ReadCloser, error) {
		attempts++
		return io.NopCloser(strings.NewReader("2006-10-01,toofew\n")), nil
	}
	p := retry.Policy{MaxAttempts: 5, BaseDelay: time.Millisecond,
		Sleep: func(context.Context, time.Duration) error { return nil }}
	if _, err := ReadRetry(context.Background(), p, open); err == nil {
		t.Fatal("malformed feed accepted")
	}
	if attempts != 1 {
		t.Fatalf("parse error retried %d times", attempts)
	}
}

func TestReadRetryExhaustion(t *testing.T) {
	down := errors.New("feed host unreachable")
	p := retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond,
		Sleep: func(context.Context, time.Duration) error { return nil }}
	_, err := ReadRetry(context.Background(), p, func() (io.ReadCloser, error) { return nil, down })
	if !errors.Is(err, down) {
		t.Fatalf("err = %v, want wrapped source error", err)
	}
}

package phishfeed

import (
	"strings"
	"testing"
	"time"

	"unclean/internal/netaddr"
)

func day(d int) time.Time {
	return time.Date(2006, 5, d, 0, 0, 0, 0, time.UTC)
}

func sampleFeed() *Feed {
	f := &Feed{}
	f.Add(Incident{Reported: day(3), URL: "http://1.2.3.4/bank", Addr: netaddr.MustParseAddr("1.2.3.4")})
	f.Add(Incident{Reported: day(1), URL: "http://5.6.7.8/pay", Addr: netaddr.MustParseAddr("5.6.7.8")})
	f.Add(Incident{Reported: day(9), URL: "http://1.2.3.4/bank2", Addr: netaddr.MustParseAddr("1.2.3.4")})
	return f
}

func TestIncidentsSorted(t *testing.T) {
	f := sampleFeed()
	incs := f.Incidents()
	if len(incs) != 3 {
		t.Fatalf("len = %d", len(incs))
	}
	for i := 1; i < len(incs); i++ {
		if incs[i].Reported.Before(incs[i-1].Reported) {
			t.Fatal("incidents not sorted by date")
		}
	}
	if f.Len() != 3 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestAddrsBetween(t *testing.T) {
	f := sampleFeed()
	s := f.AddrsBetween(day(1), day(3))
	if s.Len() != 2 {
		t.Fatalf("AddrsBetween = %v", s)
	}
	// Duplicate host in window collapses to one address.
	all := f.AddrsBetween(day(1), day(31))
	if all.Len() != 2 {
		t.Fatalf("whole-window set = %v, want 2 (dedup)", all)
	}
	empty := f.AddrsBetween(day(20), day(25))
	if !empty.IsEmpty() {
		t.Fatalf("empty window returned %v", empty)
	}
	// Inclusive bounds.
	if got := f.AddrsBetween(day(9), day(9)); got.Len() != 1 {
		t.Fatalf("single-day window = %v", got)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := sampleFeed()
	var buf strings.Builder
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	want := f.Incidents()
	gotIncs := got.Incidents()
	if len(gotIncs) != len(want) {
		t.Fatalf("round trip len = %d, want %d", len(gotIncs), len(want))
	}
	for i := range want {
		if !gotIncs[i].Reported.Equal(want[i].Reported) || gotIncs[i].URL != want[i].URL || gotIncs[i].Addr != want[i].Addr {
			t.Errorf("incident %d: got %+v, want %+v", i, gotIncs[i], want[i])
		}
	}
}

func TestWriteRejectsSeparatorInURL(t *testing.T) {
	f := &Feed{}
	f.Add(Incident{Reported: day(1), URL: "http://x/a,b", Addr: 1})
	if err := f.Write(&strings.Builder{}); err == nil {
		t.Fatal("comma in URL accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	bad := []string{
		"2006-05-01,http://x", // 2 fields
		"05/01/2006,http://x,1.2.3.4",
		"2006-05-01,http://x,1.2.3",
	}
	for _, line := range bad {
		if _, err := Read(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
	// Comments and blanks are fine.
	got, err := Read(strings.NewReader("# header\n\n2006-05-01,http://x,1.2.3.4\n"))
	if err != nil || got.Len() != 1 {
		t.Fatalf("comment handling: %v, %v", got, err)
	}
}

func TestLureURL(t *testing.T) {
	u := LureURL("bigbank", netaddr.MustParseAddr("1.2.3.4"), 0xdeadbeef)
	for _, want := range []string{"http://1.2.3.4/", "bigbank", "deadbeef"} {
		if !strings.Contains(u, want) {
			t.Errorf("LureURL %q missing %q", u, want)
		}
	}
	if strings.ContainsAny(u, ",\n") {
		t.Error("LureURL contains separator characters")
	}
}

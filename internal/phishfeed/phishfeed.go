// Package phishfeed implements a phishing incident feed in the style of
// the 2006-era reporting services (CastleCops PIRT, spam-trap harvests)
// the paper draws its provided phishing reports from (§3.1). A feed is a
// dated list of incidents, each binding a reported URL to the IPv4
// address hosting it.
package phishfeed

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"unclean/internal/ipset"
	"unclean/internal/netaddr"
)

// Incident is one reported phishing site.
type Incident struct {
	// Reported is the date the incident entered the feed.
	Reported time.Time
	// URL is the reported lure URL.
	URL string
	// Addr is the host serving the site.
	Addr netaddr.Addr
}

// Feed is an append-only incident list ordered by report date.
type Feed struct {
	incidents []Incident
}

// Add appends an incident; out-of-order dates are re-sorted on demand.
func (f *Feed) Add(inc Incident) {
	f.incidents = append(f.incidents, inc)
}

// Len returns the number of incidents.
func (f *Feed) Len() int { return len(f.incidents) }

// Incidents returns a copy of all incidents sorted by report date.
func (f *Feed) Incidents() []Incident {
	out := make([]Incident, len(f.incidents))
	copy(out, f.incidents)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Reported.Before(out[j].Reported) })
	return out
}

// AddrsBetween returns the set of hosting addresses for incidents
// reported in [from, to] inclusive.
func (f *Feed) AddrsBetween(from, to time.Time) ipset.Set {
	b := ipset.NewBuilder(0)
	for _, inc := range f.incidents {
		if !inc.Reported.Before(from) && !inc.Reported.After(to) {
			b.Add(inc.Addr)
		}
	}
	return b.Build()
}

// Write serializes the feed as "date,url,addr" lines with a header.
func (f *Feed) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# phish feed v1")
	for _, inc := range f.Incidents() {
		if strings.ContainsAny(inc.URL, ",\n\r") {
			return fmt.Errorf("phishfeed: URL %q contains a field separator", inc.URL)
		}
		fmt.Fprintf(bw, "%s,%s,%s\n", inc.Reported.Format("2006-01-02"), inc.URL, inc.Addr)
	}
	return bw.Flush()
}

// parseLine parses one incident line ("date,url,addr").
func parseLine(text string) (Incident, error) {
	parts := strings.Split(text, ",")
	if len(parts) != 3 {
		return Incident{}, fmt.Errorf("want 3 fields, got %d", len(parts))
	}
	date, err := time.Parse("2006-01-02", parts[0])
	if err != nil {
		return Incident{}, err
	}
	addr, err := netaddr.ParseAddr(parts[2])
	if err != nil {
		return Incident{}, err
	}
	return Incident{Reported: date, URL: parts[1], Addr: addr}, nil
}

// Read parses a feed written by Write. Unknown header lines and comments
// are ignored; malformed incident lines are errors.
func Read(r io.Reader) (*Feed, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	f := &Feed{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		inc, err := parseLine(text)
		if err != nil {
			return nil, fmt.Errorf("phishfeed: line %d: %v", line, err)
		}
		f.Add(inc)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

// ReadPrefix parses a feed like Read, but tolerates the one failure mode
// a non-atomic producer leaves behind: a file truncated mid-line. When
// the only malformed line is the final non-blank one, the valid prefix
// is returned along with that line's 1-based number so the caller can
// log exactly where the feed was cut; badLine is 0 for a fully
// well-formed feed. A malformed line with valid lines after it is real
// corruption, not truncation, and fails exactly as Read does.
func ReadPrefix(r io.Reader) (f *Feed, badLine int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	f = &Feed{}
	line := 0
	var pendingErr error
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if pendingErr != nil {
			// The bad line was not the last one: corruption, not truncation.
			return nil, 0, pendingErr
		}
		inc, perr := parseLine(text)
		if perr != nil {
			pendingErr = fmt.Errorf("phishfeed: line %d: %v", line, perr)
			badLine = line
			continue
		}
		f.Add(inc)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return f, badLine, nil
}

// LureURL fabricates a plausible lure URL for a hosting address; used by
// the feed generator so incidents carry realistic-shaped URLs.
func LureURL(target string, addr netaddr.Addr, token uint32) string {
	return fmt.Sprintf("http://%s/%s/verify?session=%08x", addr, target, token)
}

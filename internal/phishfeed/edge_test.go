package phishfeed

// Edge cases of the feed store: duplicate incidents, out-of-order
// report dates, and the partial-file semantics of ReadPrefix — the one
// failure mode a non-atomic feed producer leaves behind (truncation)
// versus the one it never does (mid-file corruption).

import (
	"path/filepath"
	"strings"
	"testing"

	"unclean/internal/netaddr"
)

func TestDuplicateIncidentsKeptButAddrsDedup(t *testing.T) {
	f := &Feed{}
	inc := Incident{Reported: day(2), URL: "http://1.2.3.4/bank", Addr: netaddr.MustParseAddr("1.2.3.4")}
	f.Add(inc)
	f.Add(inc) // the same lure reported twice is two incidents
	f.Add(Incident{Reported: day(5), URL: "http://1.2.3.4/other", Addr: netaddr.MustParseAddr("1.2.3.4")})

	if f.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (duplicates are incidents)", f.Len())
	}
	if s := f.AddrsBetween(day(1), day(9)); s.Len() != 1 {
		t.Fatalf("address set = %v, want the one shared host", s)
	}

	// Duplicates survive a save/load round trip verbatim.
	path := filepath.Join(t.TempDir(), "feed.phish")
	if err := f.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("round-trip Len = %d, want 3", got.Len())
	}
}

func TestOutOfOrderDatesSortedEverywhere(t *testing.T) {
	f := &Feed{}
	f.Add(Incident{Reported: day(9), URL: "http://a/9", Addr: netaddr.MustParseAddr("9.9.9.9")})
	f.Add(Incident{Reported: day(1), URL: "http://a/1", Addr: netaddr.MustParseAddr("1.1.1.1")})
	f.Add(Incident{Reported: day(9), URL: "http://a/9b", Addr: netaddr.MustParseAddr("9.9.9.10")})
	f.Add(Incident{Reported: day(4), URL: "http://a/4", Addr: netaddr.MustParseAddr("4.4.4.4")})

	incs := f.Incidents()
	for i := 1; i < len(incs); i++ {
		if incs[i].Reported.Before(incs[i-1].Reported) {
			t.Fatalf("Incidents not sorted at %d: %v after %v", i, incs[i].Reported, incs[i-1].Reported)
		}
	}
	// The sort is stable: equal dates keep insertion order.
	if incs[2].URL != "http://a/9" || incs[3].URL != "http://a/9b" {
		t.Errorf("equal-date incidents reordered: %q then %q", incs[2].URL, incs[3].URL)
	}

	// The serialized form is the sorted form, so a load sees sorted order
	// no matter how the producer appended.
	path := filepath.Join(t.TempDir(), "feed.phish")
	if err := f.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if first := got.Incidents()[0]; !first.Reported.Equal(day(1)) {
		t.Errorf("loaded feed starts at %v, want day 1", first.Reported)
	}
}

func TestReadPrefixTruncatedFile(t *testing.T) {
	// A well-formed feed cut mid-line: the prefix loads, the cut point is
	// reported with its real (header-inclusive) line number.
	cut := "# phish feed v1\n" +
		"2006-05-01,http://x/a,1.2.3.4\n" +
		"2006-05-02,http://x/b,5.6.7.8\n" +
		"2006-05-03,http://x/c,9.10."
	f, badLine, err := ReadPrefix(strings.NewReader(cut))
	if err != nil {
		t.Fatalf("ReadPrefix on truncation: %v", err)
	}
	if f.Len() != 2 {
		t.Fatalf("prefix Len = %d, want 2", f.Len())
	}
	if badLine != 4 {
		t.Fatalf("badLine = %d, want 4", badLine)
	}

	// Trailing blank lines after the cut are still truncation, not
	// corruption: only a later *incident* line promotes the error.
	f, badLine, err = ReadPrefix(strings.NewReader(cut + "\n\n"))
	if err != nil || f.Len() != 2 || badLine != 4 {
		t.Fatalf("truncation + trailing blanks: len=%v badLine=%d err=%v", f.Len(), badLine, err)
	}

	// A fully well-formed feed reports badLine 0.
	whole := "2006-05-01,http://x/a,1.2.3.4\n"
	if _, badLine, err = ReadPrefix(strings.NewReader(whole)); err != nil || badLine != 0 {
		t.Fatalf("well-formed feed: badLine=%d err=%v", badLine, err)
	}

	// A file cut inside its very first incident yields an empty prefix —
	// the caller decides whether that is acceptable.
	f, badLine, err = ReadPrefix(strings.NewReader("2006-05-01,http://x"))
	if err != nil || f.Len() != 0 || badLine != 1 {
		t.Fatalf("first-line truncation: len=%d badLine=%d err=%v", f.Len(), badLine, err)
	}
}

func TestReadPrefixMidFileCorruptionStillFails(t *testing.T) {
	corrupt := "2006-05-01,http://x/a,1.2.3.4\n" +
		"garbage line\n" +
		"2006-05-03,http://x/c,9.9.9.9\n"
	if _, _, err := ReadPrefix(strings.NewReader(corrupt)); err == nil {
		t.Fatal("mid-file corruption accepted as truncation")
	}
	// Read and ReadPrefix agree on what corruption is.
	if _, err := Read(strings.NewReader(corrupt)); err == nil {
		t.Fatal("Read accepted corrupt feed")
	}
	if _, err := Read(strings.NewReader("2006-05-01,http://x/a,1.2.3.4\n2006-05-03,http://x/c,9.10.")); err == nil {
		t.Fatal("Read must reject truncation too — only ReadPrefix tolerates it")
	}
}

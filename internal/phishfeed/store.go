package phishfeed

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"time"

	"unclean/internal/atomicfile"
	"unclean/internal/obs"
	"unclean/internal/obs/flight"
	"unclean/internal/retry"
)

// Phish-feed ingestion telemetry (obs default registry); the lag
// convention matches the report feed: lag = time() - last_success.
var (
	mFeedLoads = obs.Default().Counter("unclean_phishfeed_loads_total",
		"Successful phishing-feed ingestions.")
	mFeedRejects = obs.Default().Counter("unclean_phishfeed_rejects_total",
		"Phishing-feed ingestion attempts rejected (unreadable or malformed).")
	mFeedIncidents = obs.Default().Counter("unclean_phishfeed_incidents_total",
		"Incidents ingested across all successful feed loads.")
	mFeedLastSuccess = obs.Default().Gauge("unclean_phishfeed_last_success_unix_seconds",
		"Wall-clock time of the last successful feed ingestion (0 until one succeeds).")
)

// Durable feed files and fault-tolerant ingestion. Feeds arrive from
// the outside world (a reporting service, a spam-trap harvest), so the
// ingest path assumes the source flakes: reads are retried per policy,
// and only a feed that actually parses replaces the previous one.

// SaveFile atomically writes the feed to path with a CRC32 trailer
// (temp → fsync → rename, via atomicfile).
func (f *Feed) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		return err
	}
	if err := atomicfile.WriteFile(path, buf.Bytes()); err != nil {
		return fmt.Errorf("phishfeed: %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a feed file, verifying its CRC trailer when present
// (files written before trailers existed load unchanged).
func LoadFile(path string) (*Feed, error) {
	data, err := atomicfile.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Read(bytes.NewReader(data))
}

// ReadRetry ingests a feed from a reopenable source, retrying transient
// failures (open errors, short or broken reads) per the policy. A feed
// that parses wrong is permanent — more attempts cannot fix a malformed
// line — so the caller can fall back to its last-good feed immediately.
func ReadRetry(ctx context.Context, p retry.Policy, open func() (io.ReadCloser, error)) (*Feed, error) {
	var feed *Feed
	err := retry.Do(ctx, p, func() error {
		rc, err := open()
		if err != nil {
			mFeedRejects.Inc()
			return err
		}
		defer rc.Close()
		data, err := io.ReadAll(rc)
		if err != nil {
			mFeedRejects.Inc()
			return err // source may heal: retryable
		}
		f, err := Read(bytes.NewReader(data))
		if err != nil {
			mFeedRejects.Inc()
			return retry.Permanent(err)
		}
		feed = f
		return nil
	})
	if err == nil && feed != nil {
		mFeedLoads.Inc()
		mFeedIncidents.Add(uint64(feed.Len()))
		mFeedLastSuccess.Set(time.Now().Unix())
		flight.Default().Record(flight.Event{
			Kind: flight.KindFeedLoad, Name: "phishfeed", Verdict: "loaded",
			Value: int64(feed.Len()),
		})
	} else if err != nil {
		flight.Default().Record(flight.Event{
			Kind: flight.KindFeedLoad, Name: "phishfeed", Verdict: "rejected",
			Flags: flight.FlagErr, Detail: err.Error(),
		})
	}
	return feed, err
}

//go:build linux && amd64

package dnsbl

// recvmmsg/sendmmsg syscall numbers for linux/amd64. The syscall
// package's generated tables predate sendmmsg, so the numbers are
// pinned here; they are ABI-frozen and will never change.
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
)

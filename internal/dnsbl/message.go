// Package dnsbl implements a DNS blocklist (DNSBL) in the Spamhaus ZEN
// style the paper cites as the operational state of the art (§2): a DNS
// zone where querying d.c.b.a.<zone> returns an A record in 127.0.0.0/8
// iff a.b.c.d is listed. The package provides the minimal DNS wire codec
// (A queries and answers, with compression-pointer decoding), a UDP
// server backed by a blocklist trie, and a query client — so an
// uncleanliness-derived list can be served to real mail and firewall
// software.
package dnsbl

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// DNS constants used by the codec.
const (
	TypeA    = 1
	TypeTXT  = 16
	ClassIN  = 1
	RCodeOK  = 0
	RCodeFmt = 1
	// RCodeNXDomain is the not-listed answer.
	RCodeNXDomain = 3
	// maxMessage is the classic UDP DNS payload limit.
	maxMessage = 512
)

// Question is one DNS question.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// Answer is one resource record.
type Answer struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32
	Data  []byte
}

// Message is a DNS message restricted to what a DNSBL needs.
type Message struct {
	ID                 uint16
	Response           bool
	Authoritative      bool
	// Truncated is the TC bit: the responder had more data than the
	// transport allowed, and the client should retry over TCP.
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              uint8
	Questions          []Question
	Answers            []Answer
}

// Encode serializes the message. Answer names pointing at the question
// name use a compression pointer; other names are written in full.
func (m *Message) Encode() ([]byte, error) {
	buf := make([]byte, 0, 128)
	var hdr [12]byte
	binary.BigEndian.PutUint16(hdr[0:], m.ID)
	var flags uint16
	if m.Response {
		flags |= 1 << 15
	}
	if m.Authoritative {
		flags |= 1 << 10
	}
	if m.Truncated {
		flags |= 1 << 9
	}
	if m.RecursionDesired {
		flags |= 1 << 8
	}
	if m.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.RCode & 0x0f)
	binary.BigEndian.PutUint16(hdr[2:], flags)
	binary.BigEndian.PutUint16(hdr[4:], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(hdr[6:], uint16(len(m.Answers)))
	buf = append(buf, hdr[:]...)

	qOffset := -1
	for _, q := range m.Questions {
		if qOffset < 0 {
			qOffset = len(buf)
		}
		nb, err := encodeName(q.Name)
		if err != nil {
			return nil, err
		}
		buf = append(buf, nb...)
		buf = binary.BigEndian.AppendUint16(buf, q.Type)
		buf = binary.BigEndian.AppendUint16(buf, q.Class)
	}
	for _, a := range m.Answers {
		if qOffset >= 0 && len(m.Questions) > 0 && strings.EqualFold(a.Name, m.Questions[0].Name) {
			buf = append(buf, 0xc0|byte(qOffset>>8), byte(qOffset))
		} else {
			nb, err := encodeName(a.Name)
			if err != nil {
				return nil, err
			}
			buf = append(buf, nb...)
		}
		buf = binary.BigEndian.AppendUint16(buf, a.Type)
		buf = binary.BigEndian.AppendUint16(buf, a.Class)
		buf = binary.BigEndian.AppendUint32(buf, a.TTL)
		if len(a.Data) > 0xffff {
			return nil, fmt.Errorf("dnsbl: rdata too long")
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(a.Data)))
		buf = append(buf, a.Data...)
	}
	if len(buf) > maxMessage {
		return nil, fmt.Errorf("dnsbl: message exceeds %d bytes", maxMessage)
	}
	return buf, nil
}

// Decode parses a DNS message (questions and answers only; authority and
// additional sections are skipped if absent, rejected if present — a
// DNSBL exchange never carries them).
func Decode(b []byte) (*Message, error) {
	if len(b) < 12 {
		return nil, fmt.Errorf("dnsbl: short message (%d bytes)", len(b))
	}
	m := &Message{ID: binary.BigEndian.Uint16(b[0:])}
	flags := binary.BigEndian.Uint16(b[2:])
	m.Response = flags&(1<<15) != 0
	m.Authoritative = flags&(1<<10) != 0
	m.Truncated = flags&(1<<9) != 0
	m.RecursionDesired = flags&(1<<8) != 0
	m.RecursionAvailable = flags&(1<<7) != 0
	m.RCode = uint8(flags & 0x0f)
	qd := int(binary.BigEndian.Uint16(b[4:]))
	an := int(binary.BigEndian.Uint16(b[6:]))
	if qd > 4 || an > 16 {
		return nil, fmt.Errorf("dnsbl: implausible section counts qd=%d an=%d", qd, an)
	}
	off := 12
	for i := 0; i < qd; i++ {
		name, next, err := decodeName(b, off)
		if err != nil {
			return nil, err
		}
		if next+4 > len(b) {
			return nil, fmt.Errorf("dnsbl: truncated question")
		}
		m.Questions = append(m.Questions, Question{
			Name:  name,
			Type:  binary.BigEndian.Uint16(b[next:]),
			Class: binary.BigEndian.Uint16(b[next+2:]),
		})
		off = next + 4
	}
	for i := 0; i < an; i++ {
		name, next, err := decodeName(b, off)
		if err != nil {
			return nil, err
		}
		if next+10 > len(b) {
			return nil, fmt.Errorf("dnsbl: truncated answer header")
		}
		a := Answer{
			Name:  name,
			Type:  binary.BigEndian.Uint16(b[next:]),
			Class: binary.BigEndian.Uint16(b[next+2:]),
			TTL:   binary.BigEndian.Uint32(b[next+4:]),
		}
		rdlen := int(binary.BigEndian.Uint16(b[next+8:]))
		next += 10
		if next+rdlen > len(b) {
			return nil, fmt.Errorf("dnsbl: truncated rdata")
		}
		a.Data = append([]byte(nil), b[next:next+rdlen]...)
		m.Answers = append(m.Answers, a)
		off = next + rdlen
	}
	return m, nil
}

// encodeName converts "a.b.c" into DNS label format.
func encodeName(name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	out := make([]byte, 0, len(name)+2)
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if label == "" {
				return nil, fmt.Errorf("dnsbl: empty label in %q", name)
			}
			if len(label) > 63 {
				return nil, fmt.Errorf("dnsbl: label too long in %q", name)
			}
			out = append(out, byte(len(label)))
			out = append(out, label...)
		}
	}
	if len(out) > 253 {
		return nil, fmt.Errorf("dnsbl: name too long %q", name)
	}
	return append(out, 0), nil
}

// decodeName parses a possibly-compressed name starting at off; it
// returns the dotted name and the offset just past the name's in-place
// encoding.
func decodeName(b []byte, off int) (string, int, error) {
	var labels []string
	next := -1 // offset after the first pointer, if any
	jumps := 0
	for {
		if off >= len(b) {
			return "", 0, fmt.Errorf("dnsbl: name runs past message end")
		}
		c := int(b[off])
		switch {
		case c == 0:
			if next < 0 {
				next = off + 1
			}
			return strings.Join(labels, "."), next, nil
		case c&0xc0 == 0xc0:
			if off+1 >= len(b) {
				return "", 0, fmt.Errorf("dnsbl: truncated compression pointer")
			}
			if jumps++; jumps > 8 {
				return "", 0, fmt.Errorf("dnsbl: compression pointer loop")
			}
			if next < 0 {
				next = off + 2
			}
			off = (c&0x3f)<<8 | int(b[off+1])
		case c&0xc0 != 0:
			return "", 0, fmt.Errorf("dnsbl: reserved label type %#x", c)
		default:
			if off+1+c > len(b) {
				return "", 0, fmt.Errorf("dnsbl: truncated label")
			}
			labels = append(labels, string(b[off+1:off+1+c]))
			if len(labels) > 64 {
				return "", 0, fmt.Errorf("dnsbl: too many labels")
			}
			off += 1 + c
		}
	}
}

//go:build !(linux && (amd64 || arm64))

package dnsbl

import "net"

// newMmsgBatcher is unavailable here: either the OS has no
// recvmmsg/sendmmsg or the 32-bit Msghdr layout differs from the one
// the linux batcher assumes. Returning nil sends newBatcher to the
// portable one-datagram-per-syscall path, which is functionally
// identical.
func newMmsgBatcher(conn *net.UDPConn, ms []batchMsg) batchIO { return nil }

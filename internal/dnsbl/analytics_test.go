package dnsbl

import (
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"unclean/internal/netaddr"
	"unclean/internal/obs/flight"
)

// testQuery builds one wire-format query for addr against zone.
func testQuery(t *testing.T, zone, addr string) []byte {
	t.Helper()
	m := &Message{
		ID: 99,
		Questions: []Question{{
			Name: QueryName(netaddr.MustParseAddr(addr), zone),
			Type: TypeA, Class: ClassIN,
		}},
	}
	pkt, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

// analyticsShard builds a server with analytics on and one hand-driven
// shard (no sockets): tests feed packets straight through serveMsg.
func analyticsShard(t *testing.T, cfg AnalyticsConfig) (*Server, *Analytics, *shard) {
	t.Helper()
	srv, err := NewServer("bl.shard.example", shardTestList(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	a := srv.EnableAnalytics(cfg)
	sh := srv.newShard(0, nil, ShardConfig{}.withDefaults(1))
	sh.nowMS = uint32(time.Now().UnixMilli()) // runShard sets this per batch
	return srv, a, sh
}

// serveAddr pushes one query through the shard loop's serve path.
func serveAddr(t *testing.T, srv *Server, sh *shard, addr string) *batchMsg {
	t.Helper()
	m := &sh.msgs[0]
	m.inN = copy(m.in, testQuery(t, "bl.shard.example", addr))
	m.client = netaddr.MakeAddr(198, 51, 100, 7)
	srv.serveMsg(sh, m, srv.list.Load())
	return m
}

func TestAnalyticsScoreboardConfirmsPredictions(t *testing.T) {
	srv, a, sh := analyticsShard(t, AnalyticsConfig{SampleN: 1})
	rec := flight.New(256)
	srv.SetFlightRecorder(rec)

	// Backdate the shard's batch clock so confirmed predictions show a
	// measurable query→listing lag.
	sh.nowMS = uint32(time.Now().Add(-2 * time.Second).UnixMilli())

	// Three misses in a then-unlisted /24, one in another, one hit.
	for _, addr := range []string{"10.9.9.1", "10.9.9.2", "10.9.9.3", "172.16.0.1"} {
		if m := serveAddr(t, srv, sh, addr); m.outN == 0 {
			t.Fatalf("no answer for %s", addr)
		}
	}
	serveAddr(t, srv, sh, "10.1.1.5") // listed: must NOT enter the ring

	// Swap in a list that now contains the first /24 — the paper's
	// prediction coming true for three recorded addresses.
	nl := shardTestList()
	nl.Insert(netaddr.MustParseBlock("10.9.9.0/24"), "bot")
	srv.SetList(nl)

	if got := a.Predicted(); got != 3 {
		t.Fatalf("Predicted = %d, want 3", got)
	}
	doc := a.Snapshot(10)
	if doc.Prediction.Sweeps != 1 || doc.Prediction.Predicted != 3 {
		t.Fatalf("prediction doc = %+v, want 1 sweep, 3 predicted", doc.Prediction)
	}
	if doc.Prediction.PendingMisses != 1 {
		t.Fatalf("PendingMisses = %d, want 1 (172.16.0.1 still unlisted)", doc.Prediction.PendingMisses)
	}
	if len(doc.Prediction.TopBlocks) == 0 ||
		doc.Prediction.TopBlocks[0].Key != "10.9.9.0/24" ||
		doc.Prediction.TopBlocks[0].Count != 3 {
		t.Fatalf("TopBlocks = %+v, want 10.9.9.0/24 count 3", doc.Prediction.TopBlocks)
	}
	if doc.Prediction.LagP50 == "" {
		t.Fatal("no lag quantiles after confirmed predictions")
	}
	if p50, err := time.ParseDuration(doc.Prediction.LagP50); err != nil || p50 < time.Second || p50 > time.Minute {
		t.Fatalf("LagP50 = %q, want ≈2s", doc.Prediction.LagP50)
	}

	// The sweep left a flight event behind.
	evs := rec.Snapshot(flight.Filter{Kinds: []flight.Kind{flight.KindAnalytics}})
	if len(evs) != 1 || evs[0].Verdict != "sweep" || evs[0].Value != 3 {
		t.Fatalf("analytics events = %+v, want one sweep with value 3", evs)
	}

	// Consumed entries must not double-count on the next swap.
	nl2 := shardTestList()
	nl2.Insert(netaddr.MustParseBlock("10.9.9.0/24"), "bot")
	nl2.Insert(netaddr.MustParseBlock("192.0.2.0/24"), "bot")
	srv.SetList(nl2)
	if got := a.Predicted(); got != 3 {
		t.Fatalf("Predicted after second sweep = %d, want 3 (no double count)", got)
	}
}

func TestAnalyticsSketchesSeeSampledTraffic(t *testing.T) {
	srv, a, sh := analyticsShard(t, AnalyticsConfig{SampleN: 1})
	for i := 0; i < 8; i++ {
		serveAddr(t, srv, sh, "10.1.1.9") // hits in 10.1.1.0/24
	}
	for i := 0; i < 4; i++ {
		serveAddr(t, srv, sh, "172.16.5.1") // misses in 172.16.5.0/24
	}
	doc := a.Snapshot(10)
	if doc.Sampled != 12 {
		t.Fatalf("Sampled = %d, want 12", doc.Sampled)
	}
	if len(doc.TopClients) != 1 || doc.TopClients[0].Key != "198.51.100.7" || doc.TopClients[0].Count != 12 {
		t.Fatalf("TopClients = %+v, want 198.51.100.7 ×12", doc.TopClients)
	}
	if doc.UniqueClients != 1 {
		t.Fatalf("UniqueClients = %d, want 1", doc.UniqueClients)
	}
	if len(doc.HotSubnets) != 2 || doc.HotSubnets[0].Key != "10.1.1.0/24" || doc.HotSubnets[0].Count != 8 {
		t.Fatalf("HotSubnets = %+v, want 10.1.1.0/24 ×8 first", doc.HotSubnets)
	}
	if doc.HotSubnets[0].CMSEstimate < 8 {
		t.Fatalf("CMSEstimate = %d, want ≥ 8", doc.HotSubnets[0].CMSEstimate)
	}
	hits := doc.HitBlocks["/24"]
	if len(hits) != 1 || hits[0].Key != "10.1.1.0/24" || hits[0].Count != 8 {
		t.Fatalf("HitBlocks[/24] = %+v, want 10.1.1.0/24 ×8", hits)
	}
	if h8 := doc.HitBlocks["/8"]; len(h8) != 1 || h8[0].Key != "10.0.0.0/8" {
		t.Fatalf("HitBlocks[/8] = %+v, want 10.0.0.0/8", h8)
	}
}

// TestAnalyticsSharesShardSamplingCounter pins the satellite fix: the
// flight-event sample and the sketch sample ride one per-shard tick, so
// with both at the default 1-in-64 they fire on exactly the same
// packets — no second counter, no drift.
func TestAnalyticsSharesShardSamplingCounter(t *testing.T) {
	srv, a, sh := analyticsShard(t, AnalyticsConfig{}) // default SampleN = 64
	if a.SampleN() != shardEventSample {
		t.Fatalf("default SampleN = %d, want %d", a.SampleN(), shardEventSample)
	}
	events := 0
	for i := 0; i < 4*shardEventSample; i++ {
		m := serveAddr(t, srv, sh, "10.1.1.9")
		sampledNow := sh.tick&sh.tapMask == 0
		if m.ev != nil {
			events++
			if !sampledNow {
				t.Fatalf("packet %d: flight event without sketch sample — counters drifted", i)
			}
		} else if sampledNow {
			t.Fatalf("packet %d: sketch sample without flight event — counters drifted", i)
		}
	}
	if events != 4 {
		t.Fatalf("flight events = %d, want 4 over %d packets", events, 4*shardEventSample)
	}
	if got := a.cSampled.Value(); got != 4 {
		t.Fatalf("sampled observations = %d, want 4", got)
	}
}

func TestAnalyticsLegacyServePath(t *testing.T) {
	srv, err := NewServer("bl.legacy.example", shardTestList(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	a := srv.EnableAnalytics(AnalyticsConfig{SampleN: 1})
	var arena flight.Arena
	q := testQuery(t, "bl.legacy.example", "10.77.0.9")
	peer := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}
	for i := 0; i < 3; i++ {
		bp := srv.bufs.Get().(*[]byte)
		copy(*bp, q)
		srv.serveOne(nullConn{}, packet{data: bp, n: len(q), peer: peer}, &arena)
	}
	nl := shardTestList()
	nl.Insert(netaddr.MustParseBlock("10.77.0.0/24"), "bot")
	srv.SetList(nl)
	if got := a.Predicted(); got != 3 {
		t.Fatalf("Predicted via legacy path = %d, want 3", got)
	}
	doc := a.Snapshot(10)
	if doc.Sampled != 3 || len(doc.TopClients) != 1 {
		t.Fatalf("legacy path not sampled: sampled=%d clients=%+v", doc.Sampled, doc.TopClients)
	}
}

func TestAnalyticsFeedAttribution(t *testing.T) {
	srv, a, sh := analyticsShard(t, AnalyticsConfig{SampleN: 1})
	a.SetAttributor(func(addr netaddr.Addr) []string {
		if addr.Mask(24) == netaddr.MustParseAddr("10.9.9.0") {
			return []string{"honeypot", "spamtrap"}
		}
		return nil
	})
	serveAddr(t, srv, sh, "10.9.9.7")
	nl := shardTestList()
	nl.Insert(netaddr.MustParseBlock("10.9.9.0/24"), "bot")
	srv.SetList(nl)

	if got := a.feedPredicted("honeypot").Value(); got != 1 {
		t.Fatalf("honeypot predictions = %d, want 1", got)
	}
	if got := a.feedPredicted("spamtrap").Value(); got != 1 {
		t.Fatalf("spamtrap predictions = %d, want 1", got)
	}
	doc := a.Snapshot(10)
	tb := doc.Prediction.TopBlocks
	if len(tb) != 1 || len(tb[0].Feeds) != 2 || tb[0].Feeds[0] != "honeypot" {
		t.Fatalf("TopBlocks attribution = %+v, want feeds [honeypot spamtrap]", tb)
	}
}

func TestAnalyticsHandlerJSON(t *testing.T) {
	srv, a, sh := analyticsShard(t, AnalyticsConfig{SampleN: 1})
	serveAddr(t, srv, sh, "10.1.1.9")
	serveAddr(t, srv, sh, "172.16.0.5")

	rec := httptest.NewRecorder()
	a.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/topk?n=5", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /debug/topk: %d\n%s", rec.Code, rec.Body.String())
	}
	var doc TopKDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, rec.Body.String())
	}
	if doc.Zone != "bl.shard.example" || doc.SampleN != 1 || doc.Sampled != 2 {
		t.Fatalf("doc header = %+v", doc)
	}
	if len(doc.TopClients) == 0 || len(doc.HotSubnets) != 2 {
		t.Fatalf("doc lists: clients=%+v subnets=%+v", doc.TopClients, doc.HotSubnets)
	}

	rec = httptest.NewRecorder()
	a.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/topk?n=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("bad n accepted: %d", rec.Code)
	}
}

// TestAnalyticsShardedEndToEnd drives the real sharded serve path over
// sockets: query unlisted addresses, swap in a list containing them,
// and read a nonzero confirmed-prediction count back.
func TestAnalyticsShardedEndToEnd(t *testing.T) {
	srv, err := NewServer("bl.shard.example", shardTestList(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	a := srv.EnableAnalytics(AnalyticsConfig{SampleN: 1})
	conns, err := ListenShards("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	addr := conns[0].LocalAddr().String()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeConns(ctx, conns, ShardConfig{}) }()

	for _, probe := range []string{"10.50.1.1", "10.50.1.2", "10.50.2.1"} {
		listed, _, err := Lookup(addr, "bl.shard.example", netaddr.MustParseAddr(probe), 2*time.Second)
		if err != nil {
			t.Fatalf("lookup %s: %v", probe, err)
		}
		if listed {
			t.Fatalf("%s listed before the swap", probe)
		}
	}

	nl := shardTestList()
	nl.Insert(netaddr.MustParseBlock("10.50.0.0/16"), "bot")
	srv.SetList(nl)

	if got := a.Predicted(); got < 3 {
		t.Fatalf("Predicted = %d, want ≥ 3", got)
	}
	doc := a.Snapshot(10)
	if doc.Prediction.LagP50 == "" {
		t.Fatal("no lag quantiles from the sharded end-to-end path")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("ServeConns: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeConns did not exit")
	}
}

package dnsbl

import (
	"sync"
	"sync/atomic"
	"time"

	"unclean/internal/netaddr"
	"unclean/internal/obs"
	"unclean/internal/obs/flight"
	"unclean/internal/obs/sketch"
)

// The analytics tap and the prediction scoreboard.
//
// The paper's claim is predictive — unclean blocks today contain
// tomorrow's botnet addresses — and the serving path is where that
// claim meets reality: clients query addresses they are about to
// accept mail or connections from. The tap watches that traffic at
// line rate, two ways:
//
//   - Sampled sketches (1 in SampleN fast-path packets, sharing the
//     shard's flight-event sampling counter): who queries us (top-k
//     clients + an HLL distinct-client estimate), which /24s the
//     queries ask about (top-k + count-min), and which /8, /16, /24
//     blocks the hits land in. Each shard owns its sketches — single
//     writer, atomic cells — and /debug/topk merges them at scrape
//     time.
//
//   - The prediction scoreboard: every "not listed" answer drops the
//     queried address into a per-shard ring of packed (addr,
//     millisecond) words — unsampled, because a miss is one atomic
//     store. When SetList swaps a new generation in, the sweep diffs
//     the rings against the new matcher: an address queried *before*
//     the list contained it is a live confirmation of the paper's
//     claim, counted in unclean_analytics_predicted_total with its
//     query→listing lag histogrammed, attributed to its /24, and — in
//     mesh mode — credited to the feeds that voted the block in.
//
// Everything on the serve path stays within the shard loop's 0
// allocs/op budget (enforced by BenchmarkAnalyticsTap and the
// BenchmarkServeShardedAnalytics regression gate).

// AnalyticsConfig sizes the tap. The zero value is ready to use.
type AnalyticsConfig struct {
	// SampleN samples 1 in N fast-path packets into the sketches
	// (rounded up to a power of two; 0 means 64, matching the flight
	// recorder's event sampling; 1 samples everything).
	SampleN int
	// TopK is the capacity of each heavy-hitter summary (0 means 32).
	TopK int
	// MissRing is the per-shard capacity of the recent-miss ring the
	// scoreboard sweeps (rounded up to a power of two; 0 means 4096).
	MissRing int
	// CMSDepth and CMSWidthBits size the per-/24 count-min grid
	// (0 means 4×4096).
	CMSDepth, CMSWidthBits int
}

func (c AnalyticsConfig) withDefaults() AnalyticsConfig {
	if c.SampleN <= 0 {
		c.SampleN = shardEventSample
	}
	c.SampleN = 1 << ceilLog2(c.SampleN)
	if c.TopK <= 0 {
		c.TopK = 32
	}
	if c.MissRing <= 0 {
		c.MissRing = 4096
	}
	if c.MissRing < 256 {
		c.MissRing = 256
	}
	if c.MissRing > 1<<20 {
		c.MissRing = 1 << 20
	}
	c.MissRing = 1 << ceilLog2(c.MissRing)
	return c
}

func ceilLog2(n int) uint {
	var b uint
	for 1<<b < n {
		b++
	}
	return b
}

// Attributor maps a listed address to the names of the feeds that
// voted its block into the served list (feedmesh.Mesh.Contributors in
// mesh mode). Called only on cold paths: scoreboard sweeps and
// /debug/topk rendering.
type Attributor func(netaddr.Addr) []string

// Analytics is a server's query-analytics state: one tap per shard
// (plus a shared, mutex-guarded tap for the legacy worker-pool path)
// and the prediction scoreboard fed by SetList sweeps. Obtain one with
// Server.EnableAnalytics before serving.
type Analytics struct {
	zone       string
	cfg        AnalyticsConfig
	sampleMask uint32

	// mu guards tap registration, shared-tap sketch writes (the legacy
	// path has many workers), the predicted-block summary, and
	// serializes sweeps.
	mu     sync.Mutex
	taps   []*tap
	shared *tap
	// sharedTick is the legacy path's sampling counter (the sharded
	// path uses the per-shard tick, shared with flight-event sampling).
	sharedTick atomic.Uint32

	// pred24 summarizes the /24s of confirmed predictions (exact
	// counts — sweeps see every ring entry, no sampling).
	pred24 *sketch.TopK

	attributor atomic.Pointer[Attributor]

	reg        *obs.Registry
	zl         []string
	cSampled   *obs.Counter   // sampled sketch observations
	cSweeps    *obs.Counter   // scoreboard sweeps run
	cPredicted *obs.Counter   // addresses queried before they were listed
	hLag       *obs.Histogram // query→listing lag of confirmed predictions
	gUnique    *obs.Gauge     // merged HLL distinct-client estimate
	gPending   *obs.Gauge     // unswept miss-ring entries at last sweep
}

// EnableAnalytics switches on the query-analytics tap and prediction
// scoreboard, registering the unclean_analytics_* series on the
// server's metrics registry. Call before Serve or ServeConns (the
// shard loops capture the tap at startup); calling again returns the
// existing instance. Mount Analytics.Handler at /debug/topk to read
// the merged view.
func (s *Server) EnableAnalytics(cfg AnalyticsConfig) *Analytics {
	if s.analytics != nil {
		return s.analytics
	}
	cfg = cfg.withDefaults()
	a := &Analytics{
		zone:       s.zone,
		cfg:        cfg,
		sampleMask: uint32(cfg.SampleN - 1),
		pred24:     sketch.NewTopK(cfg.TopK),
		reg:        s.metrics,
		zl:         []string{"zone", s.zone},
	}
	a.cSampled = s.metrics.Counter("unclean_analytics_sampled_total",
		"Packets sampled into the analytics sketches.", a.zl...)
	a.cSweeps = s.metrics.Counter("unclean_analytics_sweeps_total",
		"Prediction-scoreboard sweeps run against list swaps.", a.zl...)
	a.cPredicted = s.metrics.Counter("unclean_analytics_predicted_total",
		"Addresses queried before the list contained them (live confirmations of the prediction claim).", a.zl...)
	a.hLag = s.metrics.Histogram("unclean_analytics_prediction_lag_seconds",
		"Lag between a not-listed answer and the swap that listed the address.", a.zl...)
	a.gUnique = s.metrics.Gauge("unclean_analytics_unique_clients",
		"Distinct querying clients among sampled packets (HLL estimate).", a.zl...)
	a.gPending = s.metrics.Gauge("unclean_analytics_pending_misses",
		"Recent not-listed answers awaiting the next scoreboard sweep.", a.zl...)
	a.shared = a.newTap()
	s.analytics = a
	return a
}

// Analytics returns the server's analytics instance (nil unless
// EnableAnalytics was called).
func (s *Server) Analytics() *Analytics { return s.analytics }

// SetAttributor installs the listed-address → feed-names resolver
// (mesh mode). Safe to call while serving.
func (a *Analytics) SetAttributor(fn Attributor) {
	if fn != nil {
		a.attributor.Store(&fn)
	}
}

// SampleN reports the effective sketch sampling rate.
func (a *Analytics) SampleN() int { return a.cfg.SampleN }

// tap is one writer's analytics state. Shard taps are single-writer
// (the shard goroutine); the shared tap serves the legacy worker pool
// with sketch writes serialized by Analytics.mu. The miss ring is
// multi-writer-safe either way: a claim is one atomic add, a record
// one atomic store.
type tap struct {
	clients *sketch.TopK // querying clients
	hot24   *sketch.TopK // queried /24s
	hit8    *sketch.TopK // listed answers by /8
	hit16   *sketch.TopK // listed answers by /16
	hit24   *sketch.TopK // listed answers by /24
	cms     *sketch.CMS  // per-/24 query frequency (upper bounds)
	hll     *sketch.HLL  // distinct clients

	// ring holds recent not-listed answers as addr<<32 | unix-millis
	// (truncated to 32 bits; lags are wraparound-safe for ~49 days).
	// 0 is the empty/consumed sentinel.
	ring     []atomic.Uint64
	ringMask uint32
	pos      atomic.Uint32
}

// newTap builds a tap and registers it for sweeps and scrapes.
func (a *Analytics) newTap() *tap {
	t := &tap{
		clients:  sketch.NewTopK(a.cfg.TopK),
		hot24:    sketch.NewTopK(a.cfg.TopK),
		hit8:     sketch.NewTopK(a.cfg.TopK),
		hit16:    sketch.NewTopK(a.cfg.TopK),
		hit24:    sketch.NewTopK(a.cfg.TopK),
		cms:      sketch.NewCMS(a.cfg.CMSDepth, a.cfg.CMSWidthBits),
		hll:      sketch.NewHLL(0),
		ring:     make([]atomic.Uint64, a.cfg.MissRing),
		ringMask: uint32(a.cfg.MissRing - 1),
	}
	a.mu.Lock()
	a.taps = append(a.taps, t)
	a.mu.Unlock()
	return t
}

// recordMiss drops a not-listed answer into the prediction ring:
// one atomic add, one atomic store, no branches worth counting. Every
// miss is recorded (not sampled) — the scoreboard's evidence should
// not depend on the sampling rate.
func (t *tap) recordMiss(addr netaddr.Addr, nowMS uint32) {
	p := t.pos.Add(1) - 1
	t.ring[p&t.ringMask].Store(uint64(addr)<<32 | uint64(nowMS))
}

// observe feeds one sampled packet into the sketches. Callers must
// hold the tap's write role: the owning shard goroutine, or
// Analytics.mu for the shared tap.
func (t *tap) observe(client, subject netaddr.Addr, listed bool) {
	if client != 0 {
		t.hll.Add(uint32(client))
		t.clients.Inc(uint32(client))
	}
	b24 := uint32(subject.Mask(24))
	t.cms.Inc(b24)
	t.hot24.Inc(b24)
	if listed {
		t.hit8.Inc(uint32(subject.Mask(8)))
		t.hit16.Inc(uint32(subject.Mask(16)))
		t.hit24.Inc(b24)
	}
}

// observeSlow is the legacy worker-pool (and shard slow-path fallback)
// entry point: misses always enter the shared prediction ring; 1 in
// SampleN packets update the shared sketches under the lock.
func (a *Analytics) observeSlow(client, subject netaddr.Addr, listed bool, nowMS uint32) {
	if !listed {
		a.shared.recordMiss(subject, nowMS)
	}
	if a.sharedTick.Add(1)&a.sampleMask != 0 {
		return
	}
	a.cSampled.Inc()
	a.mu.Lock()
	a.shared.observe(client, subject, listed)
	a.mu.Unlock()
}

// sweep diffs every tap's miss ring against a freshly swapped list:
// each recorded address the new matcher now lists was queried before
// it was listed — the event the paper predicts. Confirmed entries are
// consumed (CAS to zero), counted, lag-histogrammed, attributed to
// their /24 and, via the attributor, to the feeds that listed them.
// Runs synchronously inside SetList (the compile path, already off the
// serve path); sweeps are serialized by Analytics.mu.
func (a *Analytics) sweep(events *flight.Recorder, cl *compiledList) {
	start := time.Now()
	nowMS := uint32(start.UnixMilli())
	var predicted, pending int64

	a.mu.Lock()
	attr := a.attributor.Load()
	for _, t := range a.taps {
		for i := range t.ring {
			v := t.ring[i].Load()
			if v == 0 {
				continue
			}
			addr := netaddr.Addr(uint32(v >> 32))
			if _, hit := cl.matcher.Lookup(addr); !hit {
				pending++
				continue
			}
			if !t.ring[i].CompareAndSwap(v, 0) {
				continue // overwritten by a fresher miss mid-sweep
			}
			predicted++
			lagMS := nowMS - uint32(v)
			a.hLag.Observe(time.Duration(lagMS) * time.Millisecond)
			a.pred24.Inc(uint32(addr.Mask(24)))
			if attr != nil {
				for _, feed := range (*attr)(addr) {
					a.feedPredicted(feed).Inc()
				}
			}
		}
	}
	a.cSweeps.Inc()
	a.cPredicted.Add(uint64(predicted))
	a.gPending.Set(pending)
	a.gUnique.Set(int64(a.uniqueClientsLocked()))
	a.mu.Unlock()

	if events != nil {
		events.Record(flight.Event{
			Kind:    flight.KindAnalytics,
			Name:    a.zone,
			Verdict: "sweep",
			Value:   predicted,
			Latency: time.Since(start),
		})
	}
}

// feedPredicted returns (registering on first use) the per-feed
// confirmed-prediction counter.
func (a *Analytics) feedPredicted(feed string) *obs.Counter {
	lbl := make([]string, 0, len(a.zl)+2)
	lbl = append(lbl, a.zl...)
	lbl = append(lbl, "feed", feed)
	return a.reg.Counter("unclean_analytics_feed_predictions_total",
		"Confirmed predictions attributed to the feed that voted the block in.", lbl...)
}

// uniqueClientsLocked merges the per-tap HLLs. Callers hold a.mu.
func (a *Analytics) uniqueClientsLocked() float64 {
	h := sketch.NewHLL(0)
	for _, t := range a.taps {
		h.Merge(t.hll) //nolint:errcheck // taps share one precision
	}
	return h.Estimate()
}

// Predicted reports the confirmed-prediction total (tests and
// uncleanctl).
func (a *Analytics) Predicted() uint64 { return a.cPredicted.Value() }

package dnsbl

import (
	"context"
	"fmt"
	"net"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"unclean/internal/blocklist"
	"unclean/internal/faults"
	"unclean/internal/netaddr"
	"unclean/internal/retry"
	"unclean/internal/stats"
)

// Chaos coverage for the batched shard path: injected send faults must
// surface as per-shard shed counters while the server keeps answering,
// and live blocklist reloads racing the verdict cache must never serve
// a stale-generation verdict.

// TestChaosShardedShedsOnSendFaults drives the sharded server through a
// fault-injecting conn that fails 40% of response writes with a
// transient error. The shard loop must treat each failure as a shed
// (counted per shard and in the global valve counters), keep the batch
// moving, and recover: with retries every lookup still succeeds.
func TestChaosShardedShedsOnSendFaults(t *testing.T) {
	srv, err := NewServer("bl.chaos.example", shardTestList(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	flaky := faults.NewFlakyConn(conn, faults.ConnConfig{WriteErr: 0.4}, 20061014)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- srv.ServeConns(ctx, []net.PacketConn{flaky}, ShardConfig{Shards: 2, Batch: 8})
	}()

	p := retry.Policy{MaxAttempts: 10, BaseDelay: 5 * time.Millisecond,
		MaxDelay: 40 * time.Millisecond, Jitter: 1, RNG: stats.NewRNG(7)}
	addr := conn.LocalAddr().String()
	for i := 0; i < 30; i++ {
		probe := netaddr.MustParseAddr(fmt.Sprintf("10.1.1.%d", i+1))
		listed, code, err := LookupCtx(context.Background(), addr, "bl.chaos.example",
			probe, 200*time.Millisecond, p)
		if err != nil {
			t.Fatalf("lookup %s under send faults: %v", probe, err)
		}
		if !listed || code != CodeBot {
			t.Errorf("lookup %s = listed=%v code=%s, want bot", probe, listed, code)
		}
	}

	cancel()
	if err := <-done; err != nil {
		t.Errorf("ServeConns: %v", err)
	}
	conn.Close()

	st := srv.Snapshot()
	if st.Shed == 0 {
		t.Fatal("40% write faults produced no sheds")
	}
	var shardShed, shardPkts uint64
	for _, ss := range srv.ShardSnapshots() {
		shardShed += ss.Shed
		shardPkts += ss.Packets
	}
	if shardShed != st.Shed {
		t.Errorf("per-shard shed sum %d != server shed %d", shardShed, st.Shed)
	}
	// Recovery: every lookup eventually succeeded, so the shards kept
	// answering past each fault — handled packets must far exceed sheds.
	if shardPkts <= shardShed {
		t.Errorf("shards never recovered: %d packets vs %d sheds", shardPkts, shardShed)
	}
	if st.Dropped != 0 {
		t.Errorf("transient faults were miscounted as hard drops: %d", st.Dropped)
	}
	fmt.Fprintf(os.Stderr, "chaos sharded: shed=%d packets=%d queries=%d\n", shardShed, shardPkts, st.Queries)
}

// TestChaosShardedReloadHammer swaps the blocklist continuously while
// shards serve a hot address that flips between two listings. Run under
// -race this is the cache/reload data-race hammer; in any mode it
// asserts the generation-keyed cache contract: every response matches
// one of the two live lists (never a torn or foreign verdict), and once
// the hammer parks on a final list, the very next responses reflect it
// — a stale-generation cache hit would keep answering from the dead
// generation.
func TestChaosShardedReloadHammer(t *testing.T) {
	listBot := &blocklist.Trie{}
	listBot.Insert(netaddr.MustParseBlock("10.1.1.0/24"), "bot")
	listSpam := &blocklist.Trie{}
	listSpam.Insert(netaddr.MustParseBlock("10.1.1.0/24"), "spam")

	srv, err := NewServer("bl.chaos.example", listBot, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	conns, err := ListenShards("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	addr := conns[0].LocalAddr().String()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeConns(ctx, conns, ShardConfig{Batch: 8}) }()

	var stopSwaps atomic.Bool
	swapped := make(chan struct{})
	go func() {
		defer close(swapped)
		for i := 0; !stopSwaps.Load(); i++ {
			if i%2 == 0 {
				srv.SetList(listSpam)
			} else {
				srv.SetList(listBot)
			}
		}
		srv.SetList(listSpam) // park on a known final generation
	}()

	probe := netaddr.MustParseAddr("10.1.1.9")
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		listed, code, err := Lookup(addr, "bl.chaos.example", probe, 2*time.Second)
		if err != nil {
			t.Fatalf("lookup during reload hammer: %v", err)
		}
		if !listed || (code != CodeBot && code != CodeSpam) {
			t.Fatalf("torn verdict during reload: listed=%v code=%s", listed, code)
		}
	}
	stopSwaps.Store(true)
	<-swapped

	// The hammer has parked on listSpam (generation G). Every response
	// from here on must carry the spam code: shards that cached "bot"
	// under an earlier generation must see the gen mismatch and re-look.
	// Several queries so both shards' caches are exercised.
	for i := 0; i < 20; i++ {
		listed, code, err := Lookup(addr, "bl.chaos.example", probe, 2*time.Second)
		if err != nil {
			t.Fatalf("post-hammer lookup %d: %v", i, err)
		}
		if !listed || code != CodeSpam {
			t.Fatalf("stale-generation verdict after final reload: listed=%v code=%s, want spam", listed, code)
		}
	}

	cancel()
	if err := <-done; err != nil {
		t.Errorf("ServeConns: %v", err)
	}
}

//go:build linux && arm64

package dnsbl

// recvmmsg/sendmmsg syscall numbers for linux/arm64 (the generic
// asm-generic table). ABI-frozen.
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)

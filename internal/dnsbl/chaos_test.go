package dnsbl

// Chaos harness: drives the full dnsbld pipeline — report ingestion →
// tracker → blocklist → UDP serving — through deterministic, seeded
// fault injection. Every run with the same seeds exercises the same
// drops, torn writes, and crashes, so a failure here is reproducible by
// re-running the test, not a flake to retry.

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"unclean/internal/atomicfile"
	"unclean/internal/blocklist"
	"unclean/internal/core"
	"unclean/internal/faults"
	"unclean/internal/ipset"
	"unclean/internal/netaddr"
	"unclean/internal/obs/flight"
	"unclean/internal/report"
	"unclean/internal/retry"
	"unclean/internal/stats"
	"unclean/internal/tracker"
)

// chaosTracker ingests two reports into a fresh tracker: bots in
// 10.1.1.0/24 and spam in 10.2.2.0/24, both with enough evidence
// (8 addresses, score 1-e^-2 ≈ 0.86) to clear a 0.5 threshold.
func chaosTracker(t *testing.T) *tracker.Tracker {
	t.Helper()
	tr, err := tracker.New(tracker.Config{Bits: 24, HalfLife: 42 * 24 * time.Hour, Tau: 4})
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2006, 10, 14, 0, 0, 0, 0, time.UTC)
	bots := ipset.MustParse("10.1.1.1 10.1.1.2 10.1.1.3 10.1.1.4 10.1.1.5 10.1.1.6 10.1.1.7 10.1.1.8")
	spam := ipset.MustParse("10.2.2.1 10.2.2.2 10.2.2.3 10.2.2.4 10.2.2.5 10.2.2.6 10.2.2.7 10.2.2.8")
	if err := tr.Observe(core.DimBot, bots, day); err != nil {
		t.Fatal(err)
	}
	if err := tr.Observe(core.DimSpam, spam, day); err != nil {
		t.Fatal(err)
	}
	return tr
}

func chaosList(tr *tracker.Tracker) *blocklist.Trie {
	list := &blocklist.Trie{}
	for _, b := range tr.Blocklist(0.5).Blocks(24) {
		list.Insert(b, "chaos")
	}
	return list
}

// startChaosServer serves list over a fault-injecting wrapper of a real
// loopback UDP socket and returns the address plus a drain-and-stop
// function.
func startChaosServer(t *testing.T, list *blocklist.Trie, cfg faults.ConnConfig, seed uint64) (string, func()) {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	flaky := faults.NewFlakyConn(conn, cfg, seed)
	srv, err := NewServer("bl.chaos.example", list, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, flaky) }()
	stop := func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
		conn.Close()
	}
	return conn.LocalAddr().String(), stop
}

// TestChaosLookupsSurviveFaultyNetwork is the headline chaos run: with
// the server's socket dropping a quarter of queries and a quarter of
// responses (seeded, deterministic), every lookup must still come back
// correct — the client's retry policy absorbs the loss.
func TestChaosLookupsSurviveFaultyNetwork(t *testing.T) {
	tr := chaosTracker(t)
	list := chaosList(tr)
	if list.Len() != 2 {
		t.Fatalf("chaos list has %d rules, want 2", list.Len())
	}
	addr, stop := startChaosServer(t, list, faults.ConnConfig{
		DropRead:   0.25,
		DropWrite:  0.25,
		MaxLatency: 2 * time.Millisecond,
	}, 20061014)
	defer stop()

	p := retry.Policy{MaxAttempts: 10, BaseDelay: 5 * time.Millisecond,
		MaxDelay: 40 * time.Millisecond, Jitter: 1, RNG: stats.NewRNG(7)}
	probes := []struct {
		addr   netaddr.Addr
		listed bool
	}{
		{netaddr.MustParseAddr("10.1.1.9"), true},
		{netaddr.MustParseAddr("10.1.1.200"), true},
		{netaddr.MustParseAddr("10.2.2.42"), true},
		{netaddr.MustParseAddr("10.3.3.3"), false},
		{netaddr.MustParseAddr("192.0.2.1"), false},
		{netaddr.MustParseAddr("10.2.3.1"), false},
	}
	for _, pr := range probes {
		listed, _, err := LookupCtx(context.Background(), addr, "bl.chaos.example",
			pr.addr, 200*time.Millisecond, p)
		if err != nil {
			t.Fatalf("lookup %s under faults: %v", pr.addr, err)
		}
		if listed != pr.listed {
			t.Errorf("lookup %s = %v, want %v", pr.addr, listed, pr.listed)
		}
	}
}

// TestChaosIngestSurvivesTornFeed runs the ingestion leg under faults: a
// feed directory holding a torn report (a non-atomic producer caught
// mid-write) heals between retry attempts, and the resulting blocklist
// serves correctly.
func TestChaosIngestSurvivesTornFeed(t *testing.T) {
	dir := t.TempDir()
	inv := &report.Inventory{}
	inv.Add(report.New("bot", report.Observed, report.ClassBots,
		"2006-10-01", "2006-10-14", "darknet",
		ipset.MustParse("10.1.1.1 10.1.1.2 10.1.1.3 10.1.1.4 10.1.1.5 10.1.1.6 10.1.1.7 10.1.1.8")))
	if err := inv.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn"+report.Ext)
	if err := os.WriteFile(torn, []byte("# unclean report v1\ntag: torn\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	attempts := 0
	p := retry.Policy{MaxAttempts: 5, BaseDelay: time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error {
			if attempts++; attempts >= 2 {
				os.Remove(torn) // the producer finishes its write
			}
			return nil
		}}
	got, err := report.LoadDirRetry(context.Background(), p, dir)
	if err != nil {
		t.Fatal(err)
	}

	tr, err := tracker.New(tracker.Config{Bits: 24, HalfLife: 42 * 24 * time.Hour, Tau: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got.Reports {
		if err := tr.Observe(core.DimBot, r.Addrs, r.ValidTo); err != nil {
			t.Fatal(err)
		}
	}
	addr, stop := startChaosServer(t, chaosList(tr), faults.ConnConfig{}, 1)
	defer stop()
	listed, _, err := Lookup(addr, "bl.chaos.example", netaddr.MustParseAddr("10.1.1.77"), time.Second)
	if err != nil || !listed {
		t.Fatalf("lookup after healed ingest: listed=%v err=%v", listed, err)
	}
}

// TestChaosCrashRecoveryAtEveryPoint kills the checkpoint write at every
// injected crash point and proves the daemon's restart path always
// recovers a coherent tracker — the last acknowledged state or the
// completed new one, never a torn hybrid — and serves correctly from it.
func TestChaosCrashRecoveryAtEveryPoint(t *testing.T) {
	day := time.Date(2006, 10, 20, 0, 0, 0, 0, time.UTC)
	extra := ipset.MustParse("10.3.3.1 10.3.3.2 10.3.3.3 10.3.3.4 10.3.3.5 10.3.3.6 10.3.3.7 10.3.3.8")
	for k := 0; ; k++ {
		path := filepath.Join(t.TempDir(), "tracker.ckpt")

		// Acknowledged generation: 2 blocks, written cleanly.
		old := chaosTracker(t)
		if err := old.SaveFile(path); err != nil {
			t.Fatal(err)
		}

		// New generation: a third block observed; the write crashes at
		// injected point k.
		next := chaosTracker(t)
		if err := next.Observe(core.DimScan, extra, day); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := next.Save(&buf); err != nil {
			t.Fatal(err)
		}
		crash := faults.CrashAt(k)
		werr := atomicfile.WriteCheckpointHook(path, buf.Bytes(), crash.Step)
		if !crash.Tripped() {
			// k exceeded the number of crash points; the write completed
			// and the matrix is exhausted.
			if werr != nil {
				t.Fatalf("fault-free write failed: %v", werr)
			}
			break
		}

		// Restart: recovery must yield old (2 blocks) or new (3 blocks).
		rec, err := tracker.LoadFile(path)
		if err != nil {
			t.Fatalf("crash point %d: recovery failed: %v", k, err)
		}
		switch rec.BlockCount() {
		case 2, 3:
		default:
			t.Fatalf("crash point %d: recovered %d blocks, want 2 or 3", k, rec.BlockCount())
		}
		if werr == nil && rec.BlockCount() != 3 {
			t.Fatalf("crash point %d: write acknowledged but old state recovered", k)
		}

		// The recovered tracker must serve: blocks from the acknowledged
		// generation are always present.
		addr, stop := startChaosServer(t, chaosList(rec), faults.ConnConfig{}, uint64(k))
		listed, _, err := Lookup(addr, "bl.chaos.example", netaddr.MustParseAddr("10.1.1.9"), time.Second)
		stop()
		if err != nil || !listed {
			t.Fatalf("crash point %d: recovered server lookup: listed=%v err=%v", k, listed, err)
		}
	}
}

// TestChaosCrashAtCheckpointLeavesReadableFlightDump kills a checkpoint
// write mid-flight and drives the daemon's crash path (HandleCrash →
// dump → re-panic): the flight-recorder dump on disk must be readable —
// atomicfile guarantees it is complete or absent, never torn — and must
// hold the pre-crash checkpoint event plus the terminal crash event, so
// a post-mortem can see what the process was doing when it died.
func TestChaosCrashAtCheckpointLeavesReadableFlightDump(t *testing.T) {
	dumpPath := filepath.Join(t.TempDir(), "flight.crash.json")
	rec := flight.Default()
	prev := rec.DumpPath()
	rec.SetDumpPath(dumpPath)
	defer rec.SetDumpPath(prev)

	// One clean save first, so the ring holds a "saved" checkpoint event
	// and the on-disk state has an acknowledged generation to recover.
	tr := chaosTracker(t)
	ckpt := filepath.Join(t.TempDir(), "tracker.ckpt")
	if err := tr.SaveFile(ckpt); err != nil {
		t.Fatal(err)
	}

	// The next write dies at its first injected crash point; the daemon
	// turns that into a panic that HandleCrash intercepts.
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	crash := faults.CrashAt(0)
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("HandleCrash swallowed the panic")
			}
		}()
		defer flight.HandleCrash()
		if err := atomicfile.WriteCheckpointHook(ckpt, buf.Bytes(), crash.Step); err != nil {
			panic(err)
		}
	}()
	if !crash.Tripped() {
		t.Fatal("crash point 0 never fired")
	}

	dump, err := flight.LoadDump(dumpPath)
	if err != nil {
		t.Fatalf("crash dump unreadable: %v", err)
	}
	if !strings.Contains(dump.Reason, "panic") {
		t.Errorf("dump reason = %q, want a panic reason", dump.Reason)
	}
	var sawSave, sawCrash bool
	for _, e := range dump.Events {
		if e.Kind == "checkpoint" && e.Verdict == "saved" && e.Name == ckpt {
			sawSave = true
		}
		if e.Kind == "server" && e.Verdict == "crash" {
			sawCrash = true
		}
	}
	if !sawSave || !sawCrash {
		t.Errorf("dump missing events: saved=%v crash=%v (%d events)",
			sawSave, sawCrash, len(dump.Events))
	}

	// The interrupted checkpoint must still recover the acknowledged
	// generation — a crashed daemon restarts from coherent state.
	rec2, err := tracker.LoadFile(ckpt)
	if err != nil {
		t.Fatalf("post-crash checkpoint recovery: %v", err)
	}
	if rec2.BlockCount() != 2 {
		t.Errorf("recovered %d blocks, want 2", rec2.BlockCount())
	}
}

// TestChaosOverloadShedsNotBlocks floods a deliberately tiny server with
// a parked worker: excess packets must be shed (counted, dropped) rather
// than wedging the read loop, and the server must answer again once the
// worker resumes.
func TestChaosOverloadShedsNotBlocks(t *testing.T) {
	tr := chaosTracker(t)
	srv, err := NewServer("bl.chaos.example", chaosList(tr), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetConcurrency(1, 2)
	block := make(chan struct{})
	parked := make(chan struct{})
	first := true
	srv.handleHook = func() {
		if first {
			first = false
			close(parked)
			<-block
		}
	}
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, conn) }()

	cl, err := net.Dial("udp", conn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	q := encodeQuery(t, 1, "10.1.1.9", "bl.chaos.example")
	cl.Write(q)
	<-parked
	deadline := time.Now().Add(5 * time.Second)
	for srv.Snapshot().Shed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no shedding under sustained overload")
		}
		cl.Write(q)
	}
	close(block)

	// Back under capacity: the server must respond again.
	p := retry.Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, Jitter: 1}
	listed, _, err := LookupCtx(context.Background(), conn.LocalAddr().String(),
		"bl.chaos.example", netaddr.MustParseAddr("10.1.1.9"), 300*time.Millisecond, p)
	if err != nil || !listed {
		t.Fatalf("post-overload lookup: listed=%v err=%v", listed, err)
	}
	cancel()
	if err := <-done; err != nil {
		t.Errorf("Serve: %v", err)
	}
	conn.Close()
	fmt.Fprintf(os.Stderr, "chaos overload: shed=%d queries=%d\n", srv.Snapshot().Shed, srv.Snapshot().Queries)
}

package dnsbl

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strconv"
	"sync"
	"time"

	"unclean/internal/netaddr"
	"unclean/internal/obs"
	"unclean/internal/obs/flight"
)

// The sharded serve path. Instead of one reader goroutine feeding a
// worker pool through a channel (one syscall, one channel op, and one
// pooled buffer per packet), ServeConns runs N independent shard loops.
// Each shard owns a socket (SO_REUSEPORT gives every shard its own fd
// on Linux, so the kernel load-balances queries with no userspace
// dispatcher), a reusable batch of buffer slots, a private flight-event
// arena, and a direct-mapped verdict cache. A loop iteration is:
//
//	recvmmsg (one syscall, up to Batch datagrams)
//	  → for each: fast parse → cache probe → zero-copy encode
//	  → sendmmsg (one syscall for the whole batch)
//
// Nothing on that path allocates and nothing crosses a goroutine
// boundary, so throughput scales with shards until the NIC runs out.
// Packets the fast codec cannot serve (wrong shape, non-A queries,
// compressed names) drop to Server.handle — the same slow path the
// legacy worker pool uses — so behavior is identical, just slower, for
// the rare shapes.

const (
	defaultBatch = 32
	maxBatch     = 1024
	// defaultCacheBits gives 4096 verdict slots per shard (~36 KiB).
	defaultCacheBits = 12
	maxCacheBits     = 20
	// shardEventSample records one wide event per this many healthy
	// fast-path packets. Anomalies (slow path, send faults) always
	// record. Sampling keeps the flight recorder useful at line rate
	// without making the arena the hot path's only allocation source.
	shardEventSample = 64
)

// ShardConfig sizes the sharded serve path. The zero value is ready to
// use: one shard per listener conn, 32-packet batches, a 4096-entry
// verdict cache per shard.
type ShardConfig struct {
	// Shards is the number of shard loops. 0 means one per conn handed
	// to ServeConns. When Shards exceeds the conn count, shards share
	// conns round-robin (the portable single-socket mode).
	Shards int
	// Batch is the number of datagrams moved per recvmmsg/sendmmsg
	// syscall (clamped to 1..1024; 0 means 32).
	Batch int
	// CacheBits is log2 of the per-shard verdict cache slots (0 means
	// 12; negative disables the cache; clamped to 20).
	CacheBits int
}

func (c ShardConfig) withDefaults(conns int) ShardConfig {
	if c.Shards <= 0 {
		c.Shards = conns
	}
	if c.Batch <= 0 {
		c.Batch = defaultBatch
	}
	if c.Batch > maxBatch {
		c.Batch = maxBatch
	}
	if c.CacheBits == 0 {
		c.CacheBits = defaultCacheBits
	}
	if c.CacheBits > maxCacheBits {
		c.CacheBits = maxCacheBits
	}
	return c
}

// shard is one independent serve loop: its batch arena, its verdict
// cache, its event arena, its counters. No field is touched by any
// other goroutine while the loop runs, so the hot path takes no locks
// beyond the obs atomics.
type shard struct {
	id int
	io batchIO

	msgs []batchMsg // len = Batch; in/out windows into the arenas below

	// Direct-mapped verdict cache keyed on (query address, blocklist
	// generation) — same slot-hash design as blocklist.Evaluator. keys
	// holds the address, gens the generation the verdict was computed
	// under, vals the verdict: 0 empty, 1 miss, else the low octet of
	// the 127.0.0.x return code. A SetList bumps the server generation,
	// which orphans every entry at once; slots rewrite lazily on the
	// next probe. nil when the cache is disabled.
	keys      []uint32
	gens      []uint32
	vals      []uint8
	cacheBits uint32

	arena flight.Arena
	// tick is the shard's one sampling counter, bumped once per packet:
	// it drives both the 1-in-shardEventSample flight events and the
	// 1-in-SampleN analytics tap, so enabling analytics adds no second
	// counter to the fast path.
	tick uint32

	// tap is the shard's analytics sink (nil unless the server enabled
	// analytics before serving); tapMask is the sketch sampling mask
	// (SampleN-1). nowMS is the batch timestamp the miss ring records,
	// refreshed once per batch from the clock read runShard already
	// does.
	tap     *tap
	tapMask uint32
	nowMS   uint32

	// Per-shard obs series (zone + shard labels), rolled up next to the
	// server totals so a hot or faulty shard is visible in /metrics.
	packets   *obs.Counter // datagrams received
	batches   *obs.Counter // recvmmsg returns
	fastPath  *obs.Counter // answered by the zero-copy codec
	slowPath  *obs.Counter // handed to Server.handle
	cacheHits *obs.Counter // fast-path verdicts served from the cache
	shed      *obs.Counter // responses abandoned on transient send faults
	dropped   *obs.Counter // responses lost to hard write errors
}

// ShardStats is a point-in-time snapshot of one shard's counters.
type ShardStats struct {
	Shard     int
	Packets   uint64 // datagrams received
	Batches   uint64 // batched reads (Packets/Batches = realized batch size)
	FastPath  uint64 // packets answered by the zero-copy codec
	SlowPath  uint64 // packets handed to the allocating slow path
	CacheHits uint64 // fast-path verdicts served from the verdict cache
	Shed      uint64 // responses abandoned on transient send faults
	Dropped   uint64 // responses lost to hard write errors
}

func (s *Server) newShard(id int, conn net.PacketConn, cfg ShardConfig) *shard {
	sh := &shard{id: id, msgs: make([]batchMsg, cfg.Batch)}
	// One contiguous arena per direction: better locality than
	// per-slot allocations, and a single GC object each.
	inArena := make([]byte, cfg.Batch*maxMessage)
	outArena := make([]byte, cfg.Batch*outSlotSize)
	for i := range sh.msgs {
		sh.msgs[i].in = inArena[i*maxMessage : (i+1)*maxMessage]
		sh.msgs[i].out = outArena[i*outSlotSize : (i+1)*outSlotSize]
	}
	if cfg.CacheBits > 0 {
		n := 1 << cfg.CacheBits
		sh.keys = make([]uint32, n)
		sh.gens = make([]uint32, n)
		sh.vals = make([]uint8, n)
		sh.cacheBits = uint32(cfg.CacheBits)
	}
	sh.io = newBatcher(conn, sh.msgs)
	if s.analytics != nil {
		sh.tap = s.analytics.newTap()
		sh.tapMask = s.analytics.sampleMask
	}
	z := []string{"zone", s.zone, "shard", strconv.Itoa(id)}
	sh.packets = s.metrics.Counter("unclean_dnsbl_shard_packets_total", "Datagrams received by this shard.", z...)
	sh.batches = s.metrics.Counter("unclean_dnsbl_shard_batches_total", "Batched reads completed by this shard.", z...)
	sh.fastPath = s.metrics.Counter("unclean_dnsbl_shard_fastpath_total", "Packets answered by the zero-copy codec.", z...)
	sh.slowPath = s.metrics.Counter("unclean_dnsbl_shard_slowpath_total", "Packets handed to the allocating slow path.", z...)
	sh.cacheHits = s.metrics.Counter("unclean_dnsbl_shard_cache_hits_total", "Fast-path verdicts served from the verdict cache.", z...)
	sh.shed = s.metrics.Counter("unclean_dnsbl_shard_shed_total", "Responses abandoned on transient send faults.", z...)
	sh.dropped = s.metrics.Counter("unclean_dnsbl_shard_dropped_total", "Responses lost to hard write errors.", z...)
	return sh
}

// cacheSlot maps an address to its verdict-cache slot (Knuth
// multiplicative hash, top cacheBits bits — the same spread the
// blocklist evaluator uses).
func (sh *shard) cacheSlot(a netaddr.Addr) uint32 {
	return (uint32(a) * 2654435761) >> (32 - sh.cacheBits)
}

// ListenShards opens n UDP sockets on addr for the sharded serve path.
// On Linux every socket sets SO_REUSEPORT before bind, so the kernel
// spreads queries across them; elsewhere (or when n is 1) a single
// socket is returned and the shards share it. n <= 0 means GOMAXPROCS.
// The caller passes the result to ServeConns and owns closing whatever
// conns remain on error.
func ListenShards(addr string, n int) ([]net.PacketConn, error) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if !supportsReusePort {
		n = 1
	}
	lc := net.ListenConfig{Control: reusePortControl}
	conns := make([]net.PacketConn, 0, n)
	first, err := lc.ListenPacket(context.Background(), "udp", addr)
	if err != nil {
		return nil, err
	}
	conns = append(conns, first)
	// Bind the rest to the resolved address, so addr ":0" lands every
	// shard on the port the first bind chose.
	resolved := first.LocalAddr().String()
	for len(conns) < n {
		c, err := lc.ListenPacket(context.Background(), "udp", resolved)
		if err != nil {
			// SO_REUSEPORT refused (old kernel, odd network stack):
			// fall back to the sockets we have rather than fail the
			// daemon — the shards will share.
			break
		}
		conns = append(conns, c)
	}
	return conns, nil
}

// ServeConns answers queries on conns with cfg.Shards independent
// batched shard loops until every conn is closed or ctx is canceled.
// On cancellation all conns are closed — the blocked reads return
// net.ErrClosed, which each shard treats as a clean exit. Shards map
// to conns round-robin: with one conn per shard (ListenShards on
// Linux) each loop owns its socket; with fewer conns the shards share.
//
// Shard counters roll into the same Snapshot()/SLO/flight machinery as
// the legacy path, plus per-shard series visible via ShardSnapshots
// and /metrics.
func (s *Server) ServeConns(ctx context.Context, conns []net.PacketConn, cfg ShardConfig) error {
	if len(conns) == 0 {
		return fmt.Errorf("dnsbl: ServeConns needs at least one conn")
	}
	cfg = cfg.withDefaults(len(conns))

	shards := make([]*shard, cfg.Shards)
	for i := range shards {
		shards[i] = s.newShard(i, conns[i%len(conns)], cfg)
	}
	s.shardsMu.Lock()
	s.shards = shards
	s.shardsMu.Unlock()

	// The closer: cancellation closes every conn, waking all blocked
	// reads at once.
	stopCloser := make(chan struct{})
	var closerWG sync.WaitGroup
	closerWG.Add(1)
	go func() {
		defer closerWG.Done()
		select {
		case <-ctx.Done():
			for _, c := range conns {
				c.Close() //nolint:errcheck // best effort; shard loops observe ErrClosed
			}
		case <-stopCloser:
		}
	}()

	var wg sync.WaitGroup
	errs := make([]error, len(shards))
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			errs[i] = s.runShard(ctx, sh)
		}(i, sh)
	}
	wg.Wait()
	close(stopCloser)
	closerWG.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ShardSnapshots returns per-shard counters for the most recent (or
// running) ServeConns call; nil when the server has only ever used the
// legacy path.
func (s *Server) ShardSnapshots() []ShardStats {
	s.shardsMu.Lock()
	shards := s.shards
	s.shardsMu.Unlock()
	if shards == nil {
		return nil
	}
	out := make([]ShardStats, len(shards))
	for i, sh := range shards {
		out[i] = ShardStats{
			Shard:     sh.id,
			Packets:   sh.packets.Value(),
			Batches:   sh.batches.Value(),
			FastPath:  sh.fastPath.Value(),
			SlowPath:  sh.slowPath.Value(),
			CacheHits: sh.cacheHits.Value(),
			Shed:      sh.shed.Value(),
			Dropped:   sh.dropped.Value(),
		}
	}
	return out
}

// runShard is one shard's serve loop: read a batch, answer every slot,
// send the batch, account. Exits cleanly on conn close or ctx cancel.
func (s *Server) runShard(ctx context.Context, sh *shard) error {
	for {
		if ctx.Err() != nil {
			return nil
		}
		n, err := sh.io.ReadBatch(sh.msgs)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue // injected or inherited deadline; not fatal
			}
			return err
		}
		if n == 0 {
			continue
		}
		start := time.Now()
		sh.nowMS = uint32(start.UnixMilli())
		sh.batches.Inc()
		sh.packets.Add(uint64(n))
		cl := s.list.Load()
		for i := 0; i < n; i++ {
			s.serveMsg(sh, &sh.msgs[i], cl)
		}
		werr := sh.io.WriteBatch(sh.msgs[:n])
		s.finishBatch(sh, sh.msgs[:n], start)
		if werr != nil {
			if ctx.Err() != nil || errors.Is(werr, net.ErrClosed) {
				return nil
			}
			return werr
		}
	}
}

// serveMsg answers one batch slot in place. The fast path — common
// query shape, cache probe, zero-copy encode into the outbound slot —
// allocates nothing; everything else falls through to Server.handle
// and copies its answer into the slot.
func (s *Server) serveMsg(sh *shard, m *batchMsg, cl *compiledList) {
	m.outN = 0
	m.ev = nil
	m.sendShed, m.sendErr = false, false

	pkt := m.in[:m.inN]
	sh.tick++
	addr, qlen, _, ok := parseFastQuery(pkt, s.zoneWire)
	if !ok {
		// Slow path: full decode, allocation allowed, event always
		// recorded — rare shapes are exactly what the flight recorder
		// should keep.
		sh.slowPath.Inc()
		ev := sh.arena.New()
		ev.Kind = flight.KindQuery
		ev.Client = m.client
		ev.Name = s.zone
		if resp := s.handle(pkt, s.maxUDP, ev); resp != nil {
			m.outN = copy(m.out, resp)
		}
		// The rare shapes still answer real queries; feed them to the
		// tap at the same sampling rate (same goroutine, so the shard's
		// own tap is safe — no lock).
		if sh.tap != nil && (ev.Verdict == "hit" || ev.Verdict == "miss") {
			if ev.Verdict == "miss" {
				sh.tap.recordMiss(ev.Addr, sh.nowMS)
			}
			if sh.tick&sh.tapMask == 0 {
				sh.tap.observe(ev.Client, ev.Addr, ev.Verdict == "hit")
				s.analytics.cSampled.Inc()
			}
		}
		m.ev = ev
		return
	}

	sh.fastPath.Inc()
	s.queries.Inc()

	// Verdict cache probe. An entry is trusted only when both the
	// address and the blocklist generation match; a SetList bumps the
	// generation, so stale verdicts die wholesale without a flush.
	var listed bool
	var val uint8
	cached := false
	var slot uint32
	if sh.vals != nil {
		slot = sh.cacheSlot(addr)
		if sh.keys[slot] == uint32(addr) && sh.gens[slot] == cl.gen {
			val = sh.vals[slot]
			listed = val != 1
			cached = val != 0
			if cached {
				sh.cacheHits.Inc()
			}
		}
	}
	if !cached {
		entry, hit := cl.matcher.Lookup(addr)
		listed = hit
		if hit {
			_, _, _, o3 := codeFor(entry.Reason).Octets()
			val = o3
		} else {
			val = 1
		}
		if sh.vals != nil {
			sh.keys[slot] = uint32(addr)
			sh.vals[slot] = val
			sh.gens[slot] = cl.gen
		}
	}
	var code netaddr.Addr
	if listed {
		s.hits.Inc()
		code = netaddr.MakeAddr(127, 0, 0, val)
	}
	m.outN = encodeFastResponse(m.out, pkt, qlen, listed, code, s.ttl, s.maxUDP)

	// Analytics tap: every not-listed answer enters the prediction
	// ring (two atomic ops); 1 in SampleN packets — the same tick that
	// samples flight events — update the sketches.
	if sh.tap != nil {
		if !listed {
			sh.tap.recordMiss(addr, sh.nowMS)
		}
		if sh.tick&sh.tapMask == 0 {
			sh.tap.observe(m.client, addr, listed)
			s.analytics.cSampled.Inc()
		}
	}

	// Sampled wide event: 1 in shardEventSample healthy packets. The
	// event is completed (latency, send flags) in finishBatch.
	if sh.tick%shardEventSample == 0 {
		ev := sh.arena.New()
		ev.Kind = flight.KindQuery
		ev.Client = m.client
		ev.Name = s.zone
		ev.Addr = addr
		if listed {
			ev.Verdict = "hit"
			ev.Flags |= flight.FlagHit
		} else {
			ev.Verdict = "miss"
		}
		m.ev = ev
	}
}

// finishBatch settles accounting for a sent batch: latency (one clock
// read pair for the whole batch, apportioned evenly), send-fault
// counters, and the pending wide events. Send faults always produce an
// event even when the packet wasn't sampled.
func (s *Server) finishBatch(sh *shard, ms []batchMsg, start time.Time) {
	per := time.Since(start) / time.Duration(len(ms))
	for i := range ms {
		m := &ms[i]
		switch {
		case m.sendShed:
			// Transient send fault — socket buffer pressure or injected
			// loss. Counted like the legacy overload valve: the shard
			// kept reading and answering, it just couldn't deliver.
			s.shed.Inc()
			s.wShed.IncAt(start)
			sh.shed.Inc()
			if m.ev == nil {
				m.ev = sh.arena.New()
				m.ev.Kind = flight.KindQuery
				m.ev.Client = m.client
				m.ev.Name = s.zone
			}
			m.ev.Flags |= flight.FlagShed
			m.ev.Verdict = "shed"
		case m.sendErr:
			s.dropped.Inc()
			sh.dropped.Inc()
			s.latency.Observe(per)
			s.wLatency.ObserveAt(start, per)
			s.wBad.IncAt(start)
			if m.ev == nil {
				m.ev = sh.arena.New()
				m.ev.Kind = flight.KindQuery
				m.ev.Client = m.client
				m.ev.Name = s.zone
			}
			m.ev.Flags |= flight.FlagErr
			m.ev.Detail = "response write failed"
		default:
			s.latency.Observe(per)
			s.wLatency.ObserveAt(start, per)
			if m.ev != nil && m.ev.Flags&flight.FlagErr != 0 {
				s.wBad.IncAt(start)
			}
		}
		if m.ev != nil {
			m.ev.Unix = start.UnixNano()
			m.ev.Latency = per
			s.events.RecordOwned(m.ev)
		}
	}
}

package dnsbl

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"unclean/internal/blocklist"
	"unclean/internal/netaddr"
)

// encodeQuery builds one well-formed query packet for addr.
func encodeQuery(t *testing.T, id uint16, addr, zone string) []byte {
	t.Helper()
	m := &Message{
		ID: id,
		Questions: []Question{{
			Name: QueryName(netaddr.MustParseAddr(addr), zone), Type: TypeA, Class: ClassIN,
		}},
	}
	pkt, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

// TestServeGracefulShutdownDrains cancels the context while queries sit
// in the worker queue and asserts every accepted query is answered
// before Serve returns, within the deadline.
func TestServeGracefulShutdownDrains(t *testing.T) {
	list := blocklist.FromSet(mustSet("10.1.1.1"), 24, "bot")
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	srv, err := NewServer("bl.example", list, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetConcurrency(2, 128)
	srv.handleHook = func() { time.Sleep(2 * time.Millisecond) } // force a backlog

	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, conn) }()

	client, err := net.Dial("udp", conn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	const sent = 40
	for i := 0; i < sent; i++ {
		if _, err := client.Write(encodeQuery(t, uint16(i+1), "10.1.1.9", "bl.example")); err != nil {
			t.Fatal(err)
		}
	}
	// Let the reader queue (most of) the burst, then shut down.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve = %v, want nil on graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}

	// Every packet the reader accepted must have been answered: count
	// responses arriving at the client.
	st := srv.Snapshot()
	client.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
	buf := make([]byte, maxMessage)
	responses := 0
	for {
		if _, err := client.Read(buf); err != nil {
			break
		}
		responses++
	}
	if uint64(responses) != st.Queries-st.Dropped {
		t.Fatalf("responses=%d, counters=%+v — accepted work not drained", responses, st)
	}
	if st.Queries == 0 {
		t.Fatal("no queries handled at all")
	}
}

// TestServeShedsUnderOverload saturates a one-worker server and asserts
// it sheds (counts and drops) instead of blocking, then still answers.
func TestServeShedsUnderOverload(t *testing.T) {
	list := blocklist.FromSet(mustSet("10.1.1.1"), 24, "bot")
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	srv, err := NewServer("bl.example", list, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetConcurrency(1, 2)
	var slow sync.Once
	block := make(chan struct{})
	srv.handleHook = func() {
		// First request parks the only worker; the flood behind it must
		// overflow the 2-slot queue and shed.
		slow.Do(func() { <-block })
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, conn) }()

	client, err := net.Dial("udp", conn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 200; i++ {
		if _, err := client.Write(encodeQuery(t, uint16(i+1), "10.1.1.9", "bl.example")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Snapshot().Shed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never shed under overload")
		}
		time.Sleep(time.Millisecond)
	}
	close(block) // release the worker

	// The server must still answer fresh queries after the storm.
	listed, code, err := Lookup(conn.LocalAddr().String(), "bl.example", netaddr.MustParseAddr("10.1.1.7"), 2*time.Second)
	if err != nil || !listed || code != CodeBot {
		t.Fatalf("post-overload lookup: listed=%v code=%v err=%v", listed, code, err)
	}
	cancel()
	if err := <-served; err != nil {
		t.Fatal(err)
	}
}

// TestServeRecoversFromPanics injects panics into the request path and
// asserts the daemon survives and keeps serving.
func TestServeRecoversFromPanics(t *testing.T) {
	list := blocklist.FromSet(mustSet("10.1.1.1"), 24, "bot")
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	srv, err := NewServer("bl.example", list, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	remaining := 5
	srv.handleHook = func() {
		mu.Lock()
		defer mu.Unlock()
		if remaining > 0 {
			remaining--
			panic("injected request panic")
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, conn) }()

	client, err := net.Dial("udp", conn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 5; i++ {
		if _, err := client.Write(encodeQuery(t, uint16(i+1), "10.1.1.9", "bl.example")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Snapshot().Dropped < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("panicked requests not recovered: %+v", srv.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
	listed, _, err := Lookup(conn.LocalAddr().String(), "bl.example", netaddr.MustParseAddr("10.1.1.7"), 2*time.Second)
	if err != nil || !listed {
		t.Fatalf("server dead after panics: listed=%v err=%v", listed, err)
	}
	cancel()
	if err := <-served; err != nil {
		t.Fatal(err)
	}
}

// TestServeCountsMalformed sends garbage and checks it lands in the
// malformed counter, not queries.
func TestServeCountsMalformed(t *testing.T) {
	list := blocklist.FromSet(mustSet("10.1.1.1"), 24, "bot")
	addr, srv, stop := startDNSBL(t, list)
	defer stop()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 3; i++ {
		if _, err := conn.Write([]byte{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Snapshot().Malformed < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("malformed = %d, want 3", srv.Snapshot().Malformed)
		}
		time.Sleep(time.Millisecond)
	}
	if q := srv.Snapshot().Queries; q != 0 {
		t.Fatalf("garbage counted as %d queries", q)
	}
}

// TestLookupIgnoresStrayPackets verifies the client skips mismatched
// datagrams (wrong ID, non-response) and still completes the lookup.
func TestLookupIgnoresStrayPackets(t *testing.T) {
	// A fake "server" that first sends chaff, then the real answer.
	server, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	go func() {
		buf := make([]byte, maxMessage)
		n, peer, err := server.ReadFrom(buf)
		if err != nil {
			return
		}
		q, err := Decode(buf[:n])
		if err != nil {
			return
		}
		// Chaff 1: valid response, wrong ID (the spoofing scenario).
		spoof := &Message{ID: q.ID ^ 0x5555, Response: true, RCode: RCodeNXDomain,
			Questions: q.Questions}
		b, _ := spoof.Encode()
		server.WriteTo(b, peer)
		// Chaff 2: raw garbage.
		server.WriteTo([]byte{0xde, 0xad}, peer)
		// Real answer: listed.
		real := &Message{ID: q.ID, Response: true, Questions: q.Questions,
			Answers: []Answer{{Name: q.Questions[0].Name, Type: TypeA, Class: ClassIN,
				TTL: 60, Data: []byte{127, 0, 0, 3}}}}
		b, _ = real.Encode()
		server.WriteTo(b, peer)
	}()
	listed, code, err := Lookup(server.LocalAddr().String(), "bl.example",
		netaddr.MustParseAddr("10.1.1.1"), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !listed || code != CodeBot {
		t.Fatalf("listed=%v code=%v, want bot listing despite chaff", listed, code)
	}
}

// TestLookupRetriesLostDatagrams drops the first attempt entirely and
// answers the second: the retry layer must hide the loss.
func TestLookupRetriesLostDatagrams(t *testing.T) {
	server, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	go func() {
		buf := make([]byte, maxMessage)
		// Swallow the first query silently.
		if _, _, err := server.ReadFrom(buf); err != nil {
			return
		}
		// Answer the second.
		n, peer, err := server.ReadFrom(buf)
		if err != nil {
			return
		}
		q, err := Decode(buf[:n])
		if err != nil {
			return
		}
		resp := &Message{ID: q.ID, Response: true, RCode: RCodeNXDomain, Questions: q.Questions}
		b, _ := resp.Encode()
		server.WriteTo(b, peer)
	}()
	listed, _, err := Lookup(server.LocalAddr().String(), "bl.example",
		netaddr.MustParseAddr("10.1.1.1"), 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if listed {
		t.Fatal("NXDomain read as listed")
	}
}

// TestQueryIDsUnpredictable: 64 consecutive IDs should not be an
// arithmetic progression (the old clock-derived IDs were).
func TestQueryIDsUnpredictable(t *testing.T) {
	ids := make([]uint16, 64)
	for i := range ids {
		id, err := queryID()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	distinct := map[uint16]bool{}
	sameDelta := 0
	for i := 1; i < len(ids); i++ {
		distinct[ids[i]] = true
		if i >= 2 && ids[i]-ids[i-1] == ids[i-1]-ids[i-2] {
			sameDelta++
		}
	}
	if len(distinct) < 32 || sameDelta > len(ids)/4 {
		t.Fatalf("query IDs look predictable: %d distinct, %d repeated deltas", len(distinct), sameDelta)
	}
}

//go:build linux

package dnsbl

import "syscall"

// soReusePort is SO_REUSEPORT, absent from the bootstrap-era syscall
// package's constant tables but ABI-frozen at 15 on every Linux arch.
const soReusePort = 0xf

// supportsReusePort reports whether ListenShards can bind multiple
// sockets to one address. On Linux the kernel hashes each 4-tuple to
// one member of the SO_REUSEPORT group, giving the shards kernel-level
// load balancing with no userspace dispatcher.
const supportsReusePort = true

// reusePortControl is the net.ListenConfig hook that flips
// SO_REUSEPORT on the socket before bind.
func reusePortControl(network, address string, c syscall.RawConn) error {
	var serr error
	err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	})
	if err != nil {
		return err
	}
	return serr
}

package dnsbl

import (
	"testing"
	"testing/quick"
	"time"

	"unclean/internal/blocklist"
	"unclean/internal/obs/flight"
)

// Decode must never panic on attacker-controlled packets — the server
// parses raw UDP payloads.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %x: %v", data, r)
			}
		}()
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Mutated real packets exercise deeper parse paths than pure noise.
func TestDecodeMutatedPacketsNeverPanic(t *testing.T) {
	m := &Message{
		ID: 7, Response: true,
		Questions: []Question{{Name: "2.0.0.10.bl.example", Type: TypeA, Class: ClassIN}},
		Answers: []Answer{{Name: "2.0.0.10.bl.example", Type: TypeA, Class: ClassIN,
			TTL: 300, Data: []byte{127, 0, 0, 2}}},
	}
	base, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(base); i++ {
		for _, bit := range []byte{0x01, 0x80, 0xff} {
			mutated := append([]byte(nil), base...)
			mutated[i] ^= bit
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("Decode panicked on mutation at %d: %v", i, r)
					}
				}()
				_, _ = Decode(mutated)
			}()
		}
	}
	// Every truncation of a valid packet.
	for i := 0; i < len(base); i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on truncation at %d: %v", i, r)
				}
			}()
			_, _ = Decode(base[:i])
		}()
	}
}

// handle (the full server path: decode -> lookup -> encode) must survive
// arbitrary packets without panicking, returning nil for garbage.
func TestServerHandleNeverPanics(t *testing.T) {
	list := blocklist.FromSet(mustSet("10.1.1.1"), 24, "bot")
	srv, err := NewServer("bl.example", list, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("handle panicked: %v", r)
			}
		}()
		_ = srv.handle(data, maxMessage, &flight.Event{})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

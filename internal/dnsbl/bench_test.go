package dnsbl

import (
	"context"
	"net"
	"testing"
	"time"

	"unclean/internal/blocklist"
	"unclean/internal/netaddr"
	"unclean/internal/obs/flight"
)

// The serve-path benchmarks pin the cost of the instrumented hot paths:
// handle (decode → trie lookup → encode), serveOne (the legacy
// single-socket worker leg: handle plus the latency histogram,
// in-flight gauge, and a null write), and runShard (the batched sharded
// leg: fast parse → verdict cache → zero-copy encode over an in-memory
// batcher, so the numbers measure the serve path, not the kernel). CI's
// bench job archives these and gates BenchmarkServeSharded against the
// baseline, so a slowdown shows up as a regression in the trajectory,
// not a guess. ServeOne and ServeSharded also report their p50/p99
// handling latency, which is how the "sharded p99 ≤ single-socket p50"
// acceptance bar is checked.

func benchServer(b *testing.B) *Server {
	b.Helper()
	list := &blocklist.Trie{}
	for i := 0; i < 256; i++ {
		base := netaddr.Addr(uint32(10)<<24 | uint32(i)<<16 | 1<<8)
		list.Insert(netaddr.MakeBlock(base, 24), "bot")
	}
	srv, err := NewServer("bl.bench.example", list, time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	return srv
}

func benchQuery(b *testing.B, addr string) []byte {
	b.Helper()
	m := &Message{
		ID: 7,
		Questions: []Question{{
			Name: QueryName(netaddr.MustParseAddr(addr), "bl.bench.example"),
			Type: TypeA, Class: ClassIN,
		}},
	}
	pkt, err := m.Encode()
	if err != nil {
		b.Fatal(err)
	}
	return pkt
}

// reportLatency surfaces the server-side handling latency quantiles as
// benchmark metrics, so benchjson trajectories track tail behavior, not
// just throughput.
func reportLatency(b *testing.B, srv *Server) {
	b.Helper()
	lat := srv.Snapshot().Latency
	b.ReportMetric(float64(lat.P50.Nanoseconds()), "p50-ns")
	b.ReportMetric(float64(lat.P99.Nanoseconds()), "p99-ns")
}

func BenchmarkHandleHit(b *testing.B) {
	srv := benchServer(b)
	q := benchQuery(b, "10.42.1.9")
	b.ReportAllocs()
	b.ResetTimer()
	var ev flight.Event
	for i := 0; i < b.N; i++ {
		if srv.handle(q, maxMessage, &ev) == nil {
			b.Fatal("handle dropped a valid query")
		}
	}
}

func BenchmarkHandleMiss(b *testing.B) {
	srv := benchServer(b)
	q := benchQuery(b, "192.0.2.1")
	b.ReportAllocs()
	b.ResetTimer()
	var ev flight.Event
	for i := 0; i < b.N; i++ {
		if srv.handle(q, maxMessage, &ev) == nil {
			b.Fatal("handle dropped a valid query")
		}
	}
}

// nullConn is a PacketConn whose writes succeed instantly, so the
// benchmark measures the serve path, not the kernel.
type nullConn struct{ net.PacketConn }

func (nullConn) WriteTo(p []byte, addr net.Addr) (int, error) { return len(p), nil }

func BenchmarkServeOne(b *testing.B) {
	srv := benchServer(b)
	q := benchQuery(b, "10.42.1.9")
	peer := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}
	var arena flight.Arena
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp := srv.bufs.Get().(*[]byte)
		copy(*bp, q)
		srv.serveOne(nullConn{}, packet{data: bp, n: len(q), peer: peer}, &arena)
	}
	b.StopTimer()
	if st := srv.Snapshot(); st.Queries != uint64(b.N) || st.Latency.Count != uint64(b.N) {
		b.Fatalf("instrumentation lost queries: %+v after %d", st, b.N)
	}
	reportLatency(b, srv)
}

// memBatcher is an in-memory batchIO: every ReadBatch hands back a full
// batch of copies of one prepared query until the budget runs out, then
// reports the conn closed (runShard's clean-exit signal); writes are
// free. It isolates the shard loop — parse, cache, encode, accounting —
// from socket syscalls, which the ServeOne baseline also excludes.
type memBatcher struct {
	q         []byte
	remaining int64
}

func (m *memBatcher) ReadBatch(ms []batchMsg) (int, error) {
	if m.remaining <= 0 {
		return 0, net.ErrClosed
	}
	n := len(ms)
	if int64(n) > m.remaining {
		n = int(m.remaining)
	}
	m.remaining -= int64(n)
	for i := 0; i < n; i++ {
		ms[i].inN = copy(ms[i].in, m.q)
		ms[i].peer = nil
		ms[i].client = netaddr.MakeAddr(127, 0, 0, 1)
	}
	return n, nil
}

func (m *memBatcher) WriteBatch(ms []batchMsg) error { return nil }
func (m *memBatcher) LocalAddr() net.Addr            { return nil }
func (m *memBatcher) Close() error                   { return nil }

// BenchmarkServeSharded runs one complete shard loop over b.N packets:
// batched reads, the zero-copy fast path with the verdict cache, and
// full stats/flight accounting. Its ns/op against BenchmarkServeOne's
// is the sharded-vs-single-socket throughput ratio on one core (the
// SO_REUSEPORT fan-out then multiplies by shard count); the acceptance
// bar is ≥5x with 0 allocs/op.
func BenchmarkServeSharded(b *testing.B) {
	srv := benchServer(b)
	q := benchQuery(b, "10.42.1.9")
	cfg := ShardConfig{}.withDefaults(1)
	sh := srv.newShard(0, nil, cfg)
	mem := &memBatcher{q: q}
	sh.io = mem
	b.ReportAllocs()
	b.ResetTimer()
	mem.remaining = int64(b.N)
	if err := srv.runShard(context.Background(), sh); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	st := srv.Snapshot()
	if st.Queries != uint64(b.N) || st.Latency.Count != uint64(b.N) {
		b.Fatalf("instrumentation lost queries: %+v after %d", st, b.N)
	}
	if b.N > 1 && sh.cacheHits.Value() == 0 {
		b.Fatal("verdict cache never hit")
	}
	reportLatency(b, srv)
}

// BenchmarkServeShardedNoCache is the same loop with the verdict cache
// disabled: the delta against BenchmarkServeSharded is what the cache
// buys over the compiled matcher's lookup.
func BenchmarkServeShardedNoCache(b *testing.B) {
	srv := benchServer(b)
	q := benchQuery(b, "10.42.1.9")
	cfg := ShardConfig{CacheBits: -1}.withDefaults(1)
	sh := srv.newShard(0, nil, cfg)
	mem := &memBatcher{q: q}
	sh.io = mem
	b.ReportAllocs()
	b.ResetTimer()
	mem.remaining = int64(b.N)
	if err := srv.runShard(context.Background(), sh); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if st := srv.Snapshot(); st.Queries != uint64(b.N) {
		b.Fatalf("instrumentation lost queries: %+v after %d", st, b.N)
	}
}

// BenchmarkServeShardedAnalytics is BenchmarkServeSharded with the
// analytics tap enabled at its default 1-in-64 sampling: the delta is
// the full observability cost on the hot path. The acceptance bar is
// ≤5% over the baseline with allocs/op still 0 (CI gates both).
func BenchmarkServeShardedAnalytics(b *testing.B) {
	srv := benchServer(b)
	srv.EnableAnalytics(AnalyticsConfig{})
	q := benchQuery(b, "10.42.1.9")
	cfg := ShardConfig{}.withDefaults(1)
	sh := srv.newShard(0, nil, cfg)
	mem := &memBatcher{q: q}
	sh.io = mem
	b.ReportAllocs()
	b.ResetTimer()
	mem.remaining = int64(b.N)
	if err := srv.runShard(context.Background(), sh); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if st := srv.Snapshot(); st.Queries != uint64(b.N) {
		b.Fatalf("instrumentation lost queries: %+v after %d", st, b.N)
	}
	reportLatency(b, srv)
}

// BenchmarkAnalyticsTap measures the tap primitives the shard loop
// calls: one miss-ring append per not-listed answer plus one full
// sketch observation (HLL + client top-k + CMS + subnet top-k). Must
// stay 0 allocs/op — CI gates on it.
func BenchmarkAnalyticsTap(b *testing.B) {
	srv := benchServer(b)
	a := srv.EnableAnalytics(AnalyticsConfig{SampleN: 1})
	tp := a.newTap()
	now := uint32(time.Now().UnixMilli())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := netaddr.Addr(uint32(10)<<24 | uint32(i))
		tp.recordMiss(addr, now)
		tp.observe(netaddr.MakeAddr(198, 51, 100, byte(i)), addr, i&1 == 0)
	}
	if a.Predicted() != 0 {
		b.Fatal("no sweep ran, yet predictions appeared")
	}
}

package dnsbl

import (
	"net"
	"testing"
	"time"

	"unclean/internal/blocklist"
	"unclean/internal/netaddr"
	"unclean/internal/obs/flight"
)

// The serve-path benchmarks pin the cost of the instrumented hot path:
// handle (decode → trie lookup → encode) and serveOne (handle plus the
// latency histogram, in-flight gauge, and a null write). CI's bench job
// archives these, so an instrumentation change that slows serving shows
// up as a regression in the trajectory, not a guess.

func benchServer(b *testing.B) *Server {
	b.Helper()
	list := &blocklist.Trie{}
	for i := 0; i < 256; i++ {
		base := netaddr.Addr(uint32(10)<<24 | uint32(i)<<16 | 1<<8)
		list.Insert(netaddr.MakeBlock(base, 24), "bot")
	}
	srv, err := NewServer("bl.bench.example", list, time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	return srv
}

func benchQuery(b *testing.B, addr string) []byte {
	b.Helper()
	m := &Message{
		ID: 7,
		Questions: []Question{{
			Name: QueryName(netaddr.MustParseAddr(addr), "bl.bench.example"),
			Type: TypeA, Class: ClassIN,
		}},
	}
	pkt, err := m.Encode()
	if err != nil {
		b.Fatal(err)
	}
	return pkt
}

func BenchmarkHandleHit(b *testing.B) {
	srv := benchServer(b)
	q := benchQuery(b, "10.42.1.9")
	b.ReportAllocs()
	b.ResetTimer()
	var ev flight.Event
	for i := 0; i < b.N; i++ {
		if srv.handle(q, &ev) == nil {
			b.Fatal("handle dropped a valid query")
		}
	}
}

func BenchmarkHandleMiss(b *testing.B) {
	srv := benchServer(b)
	q := benchQuery(b, "192.0.2.1")
	b.ReportAllocs()
	b.ResetTimer()
	var ev flight.Event
	for i := 0; i < b.N; i++ {
		if srv.handle(q, &ev) == nil {
			b.Fatal("handle dropped a valid query")
		}
	}
}

// nullConn is a PacketConn whose writes succeed instantly, so the
// benchmark measures the serve path, not the kernel.
type nullConn struct{ net.PacketConn }

func (nullConn) WriteTo(p []byte, addr net.Addr) (int, error) { return len(p), nil }

func BenchmarkServeOne(b *testing.B) {
	srv := benchServer(b)
	q := benchQuery(b, "10.42.1.9")
	peer := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}
	var arena flight.Arena
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp := srv.bufs.Get().(*[]byte)
		copy(*bp, q)
		srv.serveOne(nullConn{}, packet{data: bp, n: len(q), peer: peer}, &arena)
	}
	b.StopTimer()
	if st := srv.Snapshot(); st.Queries != uint64(b.N) || st.Latency.Count != uint64(b.N) {
		b.Fatalf("instrumentation lost queries: %+v after %d", st, b.N)
	}
}

package dnsbl

import "unclean/internal/netaddr"

// Zero-allocation wire codec for the batched fast path. The sharded
// serve loop answers the overwhelmingly common packet shape — one
// TypeA/ClassIN question for d.c.b.a.<zone>, no compression pointers —
// by reading the request bytes in place and writing the response
// directly into the batch's outbound slot. Anything unusual (other
// qtypes, wrong zone, multiple questions, compressed names, malformed
// headers) falls back to Server.handle, whose allocations are
// acceptable at the rarity those packets occur. The two paths produce
// byte-equivalent answers for every packet the fast path accepts; the
// differential test in shard_test.go holds them to that.

// respOverhead is the size of the fixed answer record the fast path
// appends: compression pointer (2) + type (2) + class (2) + TTL (4) +
// rdlength (2) + rdata (4).
const respOverhead = 16

// outSlotSize is the capacity of one outbound batch slot: a maximal
// 512-byte question section plus the answer record. Responses above
// the server's UDP limit are truncated before sending, so the slot is
// the only place the oversized form ever exists.
const outSlotSize = maxMessage + respOverhead

// parseFastQuery matches pkt against the fast-path shape: a standard
// query (QR=0, opcode 0) carrying exactly one TypeA/ClassIN question
// whose name is four decimal labels followed by the server's zone. It
// returns the queried address, the length of the header + question
// section (what the response echoes back), and whether recursion was
// requested. ok=false means "not this shape" — the caller must hand
// the packet to the slow path, which decides between answering and
// counting it malformed.
func parseFastQuery(pkt, zoneWire []byte) (addr netaddr.Addr, qlen int, rd bool, ok bool) {
	// Header: one question, no answer/authority records, opcode 0,
	// QR=0. Additional records (EDNS OPT) are tolerated and dropped
	// from the echoed section by construction.
	if len(pkt) < 12+4+1+4 { // header + 4 one-digit labels + type/class
		return 0, 0, false, false
	}
	flags := uint16(pkt[2])<<8 | uint16(pkt[3])
	if flags&(1<<15) != 0 || (flags>>11)&0xf != 0 {
		return 0, 0, false, false
	}
	if pkt[4] != 0 || pkt[5] != 1 || pkt[6] != 0 || pkt[7] != 0 || pkt[8] != 0 || pkt[9] != 0 {
		return 0, 0, false, false
	}
	// Four decimal labels, least-significant octet first (the DNSBL
	// reversed-quad convention). Semantics mirror netaddr.ParseAddr:
	// 1-3 digits, ≤255, no leading zeros.
	off := 12
	var octets [4]uint32
	for i := 0; i < 4; i++ {
		l := int(pkt[off])
		if l < 1 || l > 3 || off+1+l >= len(pkt) {
			return 0, 0, false, false
		}
		v := uint32(0)
		for j := off + 1; j <= off+l; j++ {
			c := pkt[j]
			if c < '0' || c > '9' {
				return 0, 0, false, false
			}
			v = v*10 + uint32(c-'0')
		}
		if v > 255 || (l > 1 && pkt[off+1] == '0') {
			return 0, 0, false, false
		}
		octets[i] = v
		off += 1 + l
	}
	// Zone labels, compared case-insensitively against the precomputed
	// lowercase wire form (length bytes are < 'A', so blanket folding
	// is safe).
	if off+len(zoneWire)+4 > len(pkt) {
		return 0, 0, false, false
	}
	for i, zc := range zoneWire {
		c := pkt[off+i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != zc {
			return 0, 0, false, false
		}
	}
	off += len(zoneWire)
	if pkt[off] != 0 || pkt[off+1] != byte(TypeA) || pkt[off+2] != 0 || pkt[off+3] != byte(ClassIN) {
		return 0, 0, false, false
	}
	addr = netaddr.Addr(octets[3]<<24 | octets[2]<<16 | octets[1]<<8 | octets[0])
	return addr, off + 4, flags&(1<<8) != 0, true
}

// encodeFastResponse writes the response for a fast-path query directly
// into dst (which must have outSlotSize capacity): the request's header
// and question echoed back with the response bits patched, plus one A
// record (compression pointer to the question name) when listed. rcode
// is RCodeNXDomain for misses, RCodeOK for hits. Responses longer than
// maxUDP are truncated to header + question with TC set. Returns the
// number of bytes written.
func encodeFastResponse(dst, req []byte, qlen int, listed bool, code netaddr.Addr, ttl uint32, maxUDP int) int {
	n := copy(dst, req[:qlen])
	dst[2] = 0x84 | (req[2] & 0x01) // QR | AA, RD echoed
	dst[3] = RCodeNXDomain          // RA=0, Z=0
	dst[4], dst[5] = 0, 1           // QDCOUNT
	dst[6], dst[7] = 0, 0           // ANCOUNT (patched below on a hit)
	dst[8], dst[9], dst[10], dst[11] = 0, 0, 0, 0
	if listed {
		dst[3] = RCodeOK
		dst[7] = 1 // ANCOUNT
		o0, o1, o2, o3 := code.Octets()
		ans := dst[n : n+respOverhead]
		ans[0], ans[1] = 0xc0, 0x0c // pointer to the question name
		ans[2], ans[3] = 0, byte(TypeA)
		ans[4], ans[5] = 0, byte(ClassIN)
		ans[6], ans[7], ans[8], ans[9] = byte(ttl>>24), byte(ttl>>16), byte(ttl>>8), byte(ttl)
		ans[10], ans[11] = 0, 4
		ans[12], ans[13], ans[14], ans[15] = o0, o1, o2, o3
		n += respOverhead
	}
	if n > maxUDP {
		// Too big for the transport: TC bit, no records (the rcode
		// stands), client retries over TCP.
		dst[2] |= 0x02
		dst[7] = 0
		n = qlen
	}
	return n
}

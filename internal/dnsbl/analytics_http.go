package dnsbl

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"unclean/internal/netaddr"
	"unclean/internal/obs"
	"unclean/internal/obs/sketch"
)

// The /debug/topk document: the per-shard sketches merged into one
// operator-facing view. Sketch counts are sampled 1-in-SampleN, so the
// rendered counts and error bounds are scaled back up by SampleN —
// they estimate packets, not samples. Prediction counts are exact
// (the scoreboard never samples).

// TopKEntry is one ranked row: a client address or a CIDR block with
// its (scaled) estimated count and error bound, plus — for listed
// blocks in mesh mode — the feeds that voted it in.
type TopKEntry struct {
	Key string `json:"key"`
	// Count estimates total packets (sample count × SampleN).
	Count uint64 `json:"count"`
	// Err bounds the overestimate: Count-Err ≤ true ≤ Count.
	Err uint64 `json:"err,omitempty"`
	// CMSEstimate, present on subnet rows, is the merged count-min
	// upper bound for the same block (also scaled).
	CMSEstimate uint64 `json:"cms_estimate,omitempty"`
	// Feeds attributes a listed block to the feeds that voted it in
	// (mesh mode only).
	Feeds []string `json:"feeds,omitempty"`
}

// PredictionDoc is the scoreboard section of /debug/topk.
type PredictionDoc struct {
	// Sweeps is how many list swaps have been diffed.
	Sweeps uint64 `json:"sweeps"`
	// Predicted counts addresses queried before the list contained
	// them — live confirmations of the paper's claim.
	Predicted uint64 `json:"predicted_total"`
	// PendingMisses is the not-listed answers awaiting the next sweep
	// (at scrape time; exact).
	PendingMisses int `json:"pending_misses"`
	// Lag quantiles of confirmed predictions (query → listing).
	LagP50 string `json:"lag_p50,omitempty"`
	LagP95 string `json:"lag_p95,omitempty"`
	LagP99 string `json:"lag_p99,omitempty"`
	// TopBlocks ranks the /24s confirmed predictions landed in
	// (exact counts, with feed attribution in mesh mode).
	TopBlocks []TopKEntry `json:"top_blocks,omitempty"`
}

// TopKDoc is the body of /debug/topk.
type TopKDoc struct {
	Zone    string `json:"zone"`
	SampleN int    `json:"sample_n"`
	// Sampled is how many packets entered the sketches; multiply by
	// SampleN for the approximate packet volume they represent.
	Sampled uint64 `json:"sampled_observations"`
	// UniqueClients estimates distinct querying clients among sampled
	// packets (HLL; a lower bound on true distinct clients — sampling
	// can only miss rare ones).
	UniqueClients uint64      `json:"unique_clients_estimate"`
	TopClients    []TopKEntry `json:"top_clients"`
	// HotSubnets ranks the /24s queries ask about (hit or miss).
	HotSubnets []TopKEntry `json:"hot_subnets"`
	// HitBlocks ranks where the listed answers land, per prefix width.
	HitBlocks  map[string][]TopKEntry `json:"hit_blocks"`
	Prediction PredictionDoc          `json:"prediction"`
}

// Snapshot merges every tap into the /debug/topk document. n caps each
// ranked list (0 means 10).
func (a *Analytics) Snapshot(n int) TopKDoc {
	if n <= 0 {
		n = 10
	}
	scale := uint64(a.cfg.SampleN)
	attr := a.attributor.Load()

	a.mu.Lock()
	taps := make([]*tap, len(a.taps))
	copy(taps, a.taps)
	pred := a.pred24.Entries()
	unique := a.uniqueClientsLocked()
	a.mu.Unlock()

	collect := func(pick func(*tap) *sketch.TopK) []sketch.Entry {
		ts := make([]*sketch.TopK, len(taps))
		for i, t := range taps {
			ts[i] = pick(t)
		}
		es := sketch.MergeTopK(n, ts...)
		return es
	}
	addrKey := func(k uint32) string { return netaddr.Addr(k).String() }
	blockKey := func(bits int) func(uint32) string {
		return func(k uint32) string {
			return fmt.Sprintf("%s/%d", netaddr.Addr(k), bits)
		}
	}
	render := func(es []sketch.Entry, key func(uint32) string, scaled bool, withFeeds bool) []TopKEntry {
		out := make([]TopKEntry, 0, len(es))
		for _, e := range es {
			te := TopKEntry{Key: key(e.Key), Count: e.Count, Err: e.Err}
			if scaled {
				te.Count *= scale
				te.Err *= scale
			}
			if withFeeds && attr != nil {
				te.Feeds = (*attr)(netaddr.Addr(e.Key))
			}
			out = append(out, te)
		}
		return out
	}

	doc := TopKDoc{
		Zone:          a.zone,
		SampleN:       a.cfg.SampleN,
		Sampled:       a.cSampled.Value(),
		UniqueClients: uint64(unique),
		TopClients:    render(collect(func(t *tap) *sketch.TopK { return t.clients }), addrKey, true, false),
		HitBlocks:     map[string][]TopKEntry{},
	}

	// Hot subnets get the merged CMS estimate alongside the
	// space-saving count: two independent overestimates of the same
	// quantity, and the tighter one is whichever is smaller.
	cms := sketch.NewCMS(a.cfg.CMSDepth, a.cfg.CMSWidthBits)
	for _, t := range taps {
		cms.Merge(t.cms) //nolint:errcheck // taps share one geometry
	}
	hot := collect(func(t *tap) *sketch.TopK { return t.hot24 })
	doc.HotSubnets = render(hot, blockKey(24), true, false)
	for i, e := range hot {
		doc.HotSubnets[i].CMSEstimate = uint64(cms.Estimate(e.Key)) * scale
	}

	doc.HitBlocks["/8"] = render(collect(func(t *tap) *sketch.TopK { return t.hit8 }), blockKey(8), true, false)
	doc.HitBlocks["/16"] = render(collect(func(t *tap) *sketch.TopK { return t.hit16 }), blockKey(16), true, false)
	doc.HitBlocks["/24"] = render(collect(func(t *tap) *sketch.TopK { return t.hit24 }), blockKey(24), true, true)

	doc.Prediction = PredictionDoc{
		Sweeps:        a.cSweeps.Value(),
		Predicted:     a.cPredicted.Value(),
		PendingMisses: a.pendingMisses(taps),
	}
	lag := a.hLag.Snapshot()
	doc.Prediction.LagP50 = lagString(lag.P50)
	doc.Prediction.LagP95 = lagString(lag.P95)
	doc.Prediction.LagP99 = lagString(lag.P99)
	sort.Slice(pred, func(i, j int) bool { return pred[i].Count > pred[j].Count })
	if len(pred) > n {
		pred = pred[:n]
	}
	doc.Prediction.TopBlocks = render(pred, blockKey(24), false, true)
	return doc
}

func lagString(d time.Duration) string {
	if d == obs.NoData {
		return ""
	}
	return d.Round(time.Millisecond).String()
}

// pendingMisses counts unconsumed miss-ring entries across taps.
func (a *Analytics) pendingMisses(taps []*tap) int {
	n := 0
	for _, t := range taps {
		for i := range t.ring {
			if t.ring[i].Load() != 0 {
				n++
			}
		}
	}
	return n
}

// Handler serves the merged analytics view as JSON — mount at
// /debug/topk. Query parameter n= caps each ranked list (default 10,
// max 1000).
func (a *Analytics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 10
		if ns := req.URL.Query().Get("n"); ns != "" {
			v, err := strconv.Atoi(ns)
			if err != nil || v < 1 || v > 1000 {
				http.Error(w, fmt.Sprintf("bad n %q", ns), http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(a.Snapshot(n)) //nolint:errcheck // client went away
	})
}

package dnsbl

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"unclean/internal/blocklist"
	"unclean/internal/netaddr"
)

// Server answers DNSBL queries for one zone out of a blocklist trie. The
// rule's Reason selects the return code: reasons containing "bot",
// "scan", "spam" or "phish" map to the corresponding 127.0.0.x code,
// anything else to the generic code.
type Server struct {
	zone string
	ttl  uint32

	mu   sync.RWMutex
	list *blocklist.Trie

	queries, listedHits int
}

// NewServer builds a server for zone backed by list.
func NewServer(zone string, list *blocklist.Trie, ttl time.Duration) (*Server, error) {
	if zone == "" {
		return nil, fmt.Errorf("dnsbl: empty zone")
	}
	if list == nil {
		return nil, fmt.Errorf("dnsbl: nil blocklist")
	}
	if ttl < time.Second {
		return nil, fmt.Errorf("dnsbl: TTL below one second")
	}
	return &Server{zone: strings.TrimSuffix(zone, "."), ttl: uint32(ttl / time.Second), list: list}, nil
}

// SetList atomically replaces the served blocklist (live reload).
func (s *Server) SetList(list *blocklist.Trie) {
	s.mu.Lock()
	s.list = list
	s.mu.Unlock()
}

// Stats returns how many queries were served and how many hit a listing.
func (s *Server) Stats() (queries, listed int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.queries, s.listedHits
}

// Serve answers queries on conn until the connection is closed.
func (s *Server) Serve(conn net.PacketConn) error {
	buf := make([]byte, maxMessage)
	for {
		n, peer, err := conn.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		resp := s.handle(buf[:n])
		if resp == nil {
			continue // unparseable: drop, as real servers do
		}
		if _, err := conn.WriteTo(resp, peer); err != nil && !errors.Is(err, net.ErrClosed) {
			return err
		}
	}
}

// handle builds the response bytes for one query packet, or nil to drop.
func (s *Server) handle(pkt []byte) []byte {
	q, err := Decode(pkt)
	if err != nil || q.Response || len(q.Questions) != 1 {
		return nil
	}
	s.mu.Lock()
	s.queries++
	list := s.list
	s.mu.Unlock()

	question := q.Questions[0]
	resp := &Message{
		ID:                 q.ID,
		Response:           true,
		Authoritative:      true,
		RecursionDesired:   q.RecursionDesired,
		RecursionAvailable: false,
		Questions:          []Question{question},
	}
	addr, ok := ParseQueryName(question.Name, s.zone)
	switch {
	case !ok:
		resp.RCode = RCodeNXDomain
	case question.Type != TypeA || question.Class != ClassIN:
		resp.RCode = RCodeOK // name exists; no data of that type
	default:
		entry, listed := list.Lookup(addr)
		if !listed {
			resp.RCode = RCodeNXDomain
		} else {
			s.mu.Lock()
			s.listedHits++
			s.mu.Unlock()
			code := codeFor(entry.Reason)
			o0, o1, o2, o3 := code.Octets()
			resp.Answers = append(resp.Answers, Answer{
				Name:  question.Name,
				Type:  TypeA,
				Class: ClassIN,
				TTL:   s.ttl,
				Data:  []byte{o0, o1, o2, o3},
			})
		}
	}
	out, err := resp.Encode()
	if err != nil {
		return nil
	}
	return out
}

func codeFor(reason string) netaddr.Addr {
	r := strings.ToLower(reason)
	switch {
	case strings.Contains(r, "bot"):
		return CodeBot
	case strings.Contains(r, "scan"):
		return CodeScan
	case strings.Contains(r, "spam"):
		return CodeSpam
	case strings.Contains(r, "phish"):
		return CodePhish
	}
	return CodeGeneric
}

// Lookup performs a DNSBL query against server (a UDP address) and
// reports whether addr is listed, with the return code when it is.
func Lookup(server string, zone string, addr netaddr.Addr, timeout time.Duration) (listed bool, code netaddr.Addr, err error) {
	conn, err := net.Dial("udp", server)
	if err != nil {
		return false, 0, err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return false, 0, err
	}
	q := &Message{
		ID:               uint16(time.Now().UnixNano()) | 1,
		RecursionDesired: true,
		Questions: []Question{{
			Name:  QueryName(addr, zone),
			Type:  TypeA,
			Class: ClassIN,
		}},
	}
	pkt, err := q.Encode()
	if err != nil {
		return false, 0, err
	}
	if _, err := conn.Write(pkt); err != nil {
		return false, 0, err
	}
	buf := make([]byte, maxMessage)
	n, err := conn.Read(buf)
	if err != nil {
		return false, 0, err
	}
	resp, err := Decode(buf[:n])
	if err != nil {
		return false, 0, err
	}
	if resp.ID != q.ID || !resp.Response {
		return false, 0, fmt.Errorf("dnsbl: mismatched response")
	}
	if resp.RCode == RCodeNXDomain {
		return false, 0, nil
	}
	for _, a := range resp.Answers {
		if a.Type == TypeA && len(a.Data) == 4 {
			return true, netaddr.MakeAddr(a.Data[0], a.Data[1], a.Data[2], a.Data[3]), nil
		}
	}
	return false, 0, nil
}

package dnsbl

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"unclean/internal/blocklist"
	"unclean/internal/netaddr"
	"unclean/internal/obs"
	"unclean/internal/obs/flight"
)

// Server answers DNSBL queries for one zone out of a blocklist trie. The
// rule's Reason selects the return code: reasons containing "bot",
// "scan", "spam" or "phish" map to the corresponding 127.0.0.x code,
// anything else to the generic code.
//
// The serving path is built for hostile conditions: a bounded worker
// pool with explicit load shedding (saturation drops packets and counts
// them instead of blocking the reader), per-request panic recovery (one
// poisoned packet cannot take the daemon down), and context-based
// graceful shutdown that drains queued work before returning. The hot
// path is lock-free: counters are obs atomics and the blocklist hangs
// off an atomic pointer, so live reloads and metric scrapes never
// contend with queries.
//
// Each server owns a private obs.Registry (series labeled with its
// zone), so several servers in one process keep independent counters;
// mount Metrics() on an exposition handler to scrape them.
type Server struct {
	zone string
	ttl  uint32

	list atomic.Pointer[compiledList]

	workers  int
	queueLen int

	// maxUDP bounds UDP responses: anything larger is truncated to
	// header + question with the TC bit set, telling the client to
	// retry over TCP. Defaults to the classic 512-byte DNS limit; tests
	// shrink it to force the truncation path.
	maxUDP int

	// zoneWire is the server's zone in DNS wire format (lowercased
	// labels, terminal root label), precomputed so the batched fast
	// path can match query names without allocating.
	zoneWire []byte

	// shards is set by ServeConns for ShardSnapshots; nil when serving
	// through the legacy single-socket worker pool.
	shardsMu sync.Mutex
	shards   []*shard

	metrics   *obs.Registry
	queries   *obs.Counter   // well-formed queries handled
	hits      *obs.Counter   // queries that matched a listing
	malformed *obs.Counter   // undecodable or non-query packets
	dropped   *obs.Counter   // responses lost to write errors or panics
	shed      *obs.Counter   // packets dropped because the queue was full
	panics    *obs.Counter   // recovered per-request panics (also dropped)
	inflight  *obs.Gauge     // packets currently inside a worker
	latency   *obs.Histogram // per-query handling latency

	// Rolling-window views of the same serving signals (1m/5m/1h), plus
	// the availability SLO derived from them. wLatency doubles as the
	// per-window handled count (every handled packet observes exactly
	// one latency); wBad counts failures (panic, write drop, encode
	// error) on the rare path, so the common case pays one windowed
	// observe, not three windowed writes; wShed the overload-valve
	// drops.
	wBad     *obs.WindowedCounter
	wShed    *obs.WindowedCounter
	wLatency *obs.WindowedHistogram
	slo      *obs.SLO

	// events receives one wide event per packet (and per shed decision);
	// defaults to the process flight recorder.
	events *flight.Recorder

	// analytics, when non-nil (EnableAnalytics), taps the serve path
	// for sampled sketches and feeds the prediction scoreboard. Set
	// before serving, like the flight recorder.
	analytics *Analytics

	// handleHook, when set, runs inside each worker just before the
	// packet is handled — the seam chaos tests use to inject latency and
	// panics into the request path.
	handleHook func()

	bufs sync.Pool
}

// compiledList pairs the source trie (kept for List and re-export) with
// its compiled matcher (what queries actually probe) and a monotonically
// increasing generation number. All three swap together under one atomic
// pointer, so a reload is a single compile + store, the hot path never
// sees a trie/matcher mismatch, and the shards' verdict caches — keyed
// on (address, generation) — invalidate wholesale on the generation
// bump without a flush.
type compiledList struct {
	trie    *blocklist.Trie
	matcher *blocklist.Matcher
	gen     uint32
}

// ServerStats is a point-in-time snapshot of the serving counters and
// the query latency distribution.
type ServerStats struct {
	// Queries counts well-formed queries handled (including NXDomain
	// answers); Hits counts those that matched a listing.
	Queries, Hits uint64
	// Malformed counts packets that did not decode to a single-question
	// query; they are dropped silently, as real servers do.
	Malformed uint64
	// Dropped counts responses lost after handling: write failures and
	// recovered per-request panics.
	Dropped uint64
	// Shed counts packets discarded unhandled because the worker queue
	// was full — the overload valve.
	Shed uint64
	// Panics counts recovered per-request panics (a subset of Dropped).
	Panics uint64
	// InFlight is the number of packets currently inside workers.
	InFlight int64
	// Latency summarizes the per-query handling latency distribution.
	Latency obs.HistSnapshot
}

// NewServer builds a server for zone backed by list. The worker pool
// defaults to GOMAXPROCS workers over a 1024-packet queue; tune with
// SetConcurrency before calling Serve.
func NewServer(zone string, list *blocklist.Trie, ttl time.Duration) (*Server, error) {
	if zone == "" {
		return nil, fmt.Errorf("dnsbl: empty zone")
	}
	if list == nil {
		return nil, fmt.Errorf("dnsbl: nil blocklist")
	}
	if ttl < time.Second {
		return nil, fmt.Errorf("dnsbl: TTL below one second")
	}
	s := &Server{
		zone:     strings.TrimSuffix(zone, "."),
		ttl:      uint32(ttl / time.Second),
		workers:  runtime.GOMAXPROCS(0),
		queueLen: 1024,
		maxUDP:   maxMessage,
	}
	zw, err := encodeName(s.zone)
	if err != nil {
		return nil, fmt.Errorf("dnsbl: bad zone: %w", err)
	}
	s.zoneWire = toLowerWire(zw)
	s.list.Store(&compiledList{trie: list, matcher: blocklist.Compile(list), gen: 1})
	s.bufs.New = func() any { b := make([]byte, maxMessage); return &b }
	s.metrics = obs.NewRegistry()
	z := []string{"zone", s.zone}
	s.queries = s.metrics.Counter("unclean_dnsbl_queries_total", "Well-formed DNSBL queries handled.", z...)
	s.hits = s.metrics.Counter("unclean_dnsbl_hits_total", "Queries that matched a listing.", z...)
	s.malformed = s.metrics.Counter("unclean_dnsbl_malformed_total", "Undecodable or non-query packets dropped.", z...)
	s.dropped = s.metrics.Counter("unclean_dnsbl_dropped_total", "Responses lost to write errors or recovered panics.", z...)
	s.shed = s.metrics.Counter("unclean_dnsbl_shed_total", "Packets shed unhandled because the worker queue was full.", z...)
	s.panics = s.metrics.Counter("unclean_dnsbl_panics_total", "Per-request panics recovered on the serving path.", z...)
	s.inflight = s.metrics.Gauge("unclean_dnsbl_inflight", "Packets currently inside workers.", z...)
	s.latency = s.metrics.Histogram("unclean_dnsbl_query_seconds", "Per-query handling latency (dequeue to response written).", z...)
	s.wBad = s.metrics.WindowedCounter("unclean_dnsbl_window_bad_total", "Packets that failed handling (panic, write drop, encode error), per rolling window.", z...)
	s.wShed = s.metrics.WindowedCounter("unclean_dnsbl_window_shed_total", "Packets shed unhandled, per rolling window.", z...)
	s.wLatency = s.metrics.WindowedHistogram("unclean_dnsbl_window_query_seconds", "Per-query handling latency, per rolling window.", z...)
	s.slo = s.metrics.RegisterSLO(&obs.SLO{
		Name:   "unclean_dnsbl_availability",
		Help:   "Fraction of accepted packets handled cleanly.",
		Target: 0.999,
		Bad:    s.wBad,
		Total:  s.wLatency.AsTotal(),
	}, z...)
	s.events = flight.Default()
	return s, nil
}

// Metrics returns the server's private metrics registry, for mounting
// on an obs exposition handler alongside the Default registry.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// SetConcurrency sizes the worker pool and its queue; it must be called
// before Serve. Values below 1 keep the current setting.
func (s *Server) SetConcurrency(workers, queue int) {
	if workers >= 1 {
		s.workers = workers
	}
	if queue >= 1 {
		s.queueLen = queue
	}
}

// SetList atomically replaces the served blocklist (live reload). The
// list is compiled off the serving path, then swapped in with one atomic
// store. It is safe to call while Serve is running; in-flight queries
// finish against whichever compiled list they started with. The swap
// bumps the list generation, which invalidates every shard's verdict
// cache at once: a cache entry is only trusted when its recorded
// generation matches the live list's.
// After the swap, the analytics scoreboard (when enabled) sweeps its
// recent-miss rings against the new matcher: every address that was
// queried before this list contained it is counted as a confirmed
// prediction. The sweep runs here, on the reload path, never on the
// serve path.
func (s *Server) SetList(list *blocklist.Trie) {
	if list != nil {
		old := s.list.Load()
		nl := &compiledList{trie: list, matcher: blocklist.Compile(list), gen: old.gen + 1}
		s.list.Store(nl)
		if a := s.analytics; a != nil {
			a.sweep(s.events, nl)
		}
	}
}

// SetMaxUDPSize lowers the UDP response size limit (default 512 bytes).
// Responses that exceed it are truncated to header + question with the
// TC bit set, steering the client to TCP. Values below the 12-byte
// header or above 512 are ignored. Call before Serve.
func (s *Server) SetMaxUDPSize(n int) {
	if n >= 12 && n <= maxMessage {
		s.maxUDP = n
	}
}

// Generation returns the current blocklist generation (bumped by every
// SetList). Exposed for tests asserting cache invalidation.
func (s *Server) Generation() uint32 { return s.list.Load().gen }

// toLowerWire lowercases the label bytes of a wire-format name in place
// and returns it (label lengths are < 'A', so a blanket byte lowercase
// is safe for ASCII zones).
func toLowerWire(b []byte) []byte {
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + ('a' - 'A')
		}
	}
	return b
}

// List returns the currently served blocklist.
func (s *Server) List() *blocklist.Trie { return s.list.Load().trie }

// Snapshot returns all serving counters and the latency summary. It is
// the one stats accessor; the counters it reports are the same obs
// series the /metrics exposition serves, so the two cannot drift.
func (s *Server) Snapshot() ServerStats {
	return ServerStats{
		Queries:   s.queries.Value(),
		Hits:      s.hits.Value(),
		Malformed: s.malformed.Value(),
		Dropped:   s.dropped.Value(),
		Shed:      s.shed.Value(),
		Panics:    s.panics.Value(),
		InFlight:  s.inflight.Value(),
		Latency:   s.latency.Snapshot(),
	}
}

// ShedRate reports the fraction of packets shed by the overload valve
// over the trailing window (0 when the server saw no traffic). It is
// the signal /readyz uses: a server shedding heavily is up but not
// ready for more load.
func (s *Server) ShedRate(window time.Duration) float64 {
	shed := s.wShed.Total(window)
	total := shed + s.wLatency.Count(window)
	if total == 0 {
		return 0
	}
	return float64(shed) / float64(total)
}

// SLO returns the server's availability SLO (clean-handling ratio over
// rolling windows), for burn-rate checks and readiness rules.
func (s *Server) SLO() *obs.SLO { return s.slo }

// WatchSignals registers the server's anomaly-watchdog signals with
// register (typically watchdog.Watchdog.RegisterSignal): the trailing
// shed fraction, SLO burn rates, and the panic counter. The func-typed
// hook keeps this package free of a watchdog dependency.
func (s *Server) WatchSignals(register func(name string, fn func() float64)) {
	register("dnsbl_shed_frac_1m", func() float64 { return s.ShedRate(time.Minute) })
	register("dnsbl_slo_burn_5m", func() float64 { return s.slo.BurnRate(5 * time.Minute) })
	register("dnsbl_slo_burn_1h", func() float64 { return s.slo.BurnRate(time.Hour) })
	register("dnsbl_panics_total", func() float64 { return float64(s.panics.Value()) })
}

// SetFlightRecorder redirects the server's wide events to r (tests and
// multi-server processes that keep separate rings). Call before Serve.
func (s *Server) SetFlightRecorder(r *flight.Recorder) {
	if r != nil {
		s.events = r
	}
}

// packet is one received datagram handed from the reader to a worker.
// data aliases a pooled buffer returned to the pool after handling.
type packet struct {
	data *[]byte
	n    int
	peer net.Addr
}

// Serve answers queries on conn until the connection is closed or ctx is
// canceled. On cancellation the connection is closed — that is the
// wakeup: the blocked ReadFrom returns net.ErrClosed, which is treated
// as a clean exit. Workers then finish handling every packet already
// queued; responses whose write races the close are counted Dropped
// rather than silently lost, so Queries - Dropped always equals the
// responses that actually left the socket. Closing conn without
// canceling also returns nil.
//
// Serve is the legacy single-socket worker-pool path (one ReadFrom
// syscall per packet, explicit shed valve on queue overflow). The
// batched sharded path — ServeConns over ListenShards — is the
// line-rate replacement; this path remains for callers that need the
// worker-queue overload semantics or hand in an arbitrary PacketConn.
func (s *Server) Serve(ctx context.Context, conn net.PacketConn) error {
	queue := make(chan packet, s.queueLen)
	var wg sync.WaitGroup
	for i := 0; i < s.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns an event arena, so the wide event costs a
			// bump pointer, not a malloc, on the per-packet path.
			var arena flight.Arena
			for pkt := range queue {
				s.serveOne(conn, pkt, &arena)
			}
		}()
	}

	// The closer: cancellation closes the conn, which is the one
	// portable way to interrupt a blocked ReadFrom (deadlines are the
	// caller's, and poking them raced with legitimate use).
	stopCloser := make(chan struct{})
	var closerWG sync.WaitGroup
	closerWG.Add(1)
	go func() {
		defer closerWG.Done()
		select {
		case <-ctx.Done():
			conn.Close() //nolint:errcheck // best effort; read loop observes ErrClosed
		case <-stopCloser:
		}
	}()

	var readErr error
	for {
		if ctx.Err() != nil {
			break
		}
		bp := s.bufs.Get().(*[]byte)
		n, peer, err := conn.ReadFrom(*bp)
		if err != nil {
			s.bufs.Put(bp)
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				break
			}
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue // transient: a deadline someone else set, or injected
			}
			readErr = err
			break
		}
		select {
		case queue <- packet{data: bp, n: n, peer: peer}:
		default:
			// Saturated: shed the packet rather than block the reader —
			// under overload a DNSBL must keep reading (and mostly
			// dropping) so legitimate traffic still has a chance. Shed
			// packets still leave a wide event (kept-ring flagged), so
			// the overload is visible per-client in /debug/events.
			s.shed.Inc()
			s.wShed.Inc()
			s.events.Record(flight.Event{
				Kind:    flight.KindQuery,
				Flags:   flight.FlagShed,
				Client:  peerAddr(peer),
				Name:    s.zone,
				Verdict: "shed",
			})
			s.bufs.Put(bp)
		}
	}

	close(queue) // workers drain what was accepted, then exit
	wg.Wait()
	close(stopCloser)
	closerWG.Wait()
	return readErr
}

// serveOne handles one packet with panic isolation: a panicking request
// is counted and dropped, never fatal to the daemon. The whole worker
// leg — hook, decode, lookup, encode, write — is timed into the query
// latency histogram, and every packet leaves one wide event in the
// flight recorder (client, subject address, verdict, latency, flags).
func (s *Server) serveOne(conn net.PacketConn, pkt packet, arena *flight.Arena) {
	start := time.Now()
	s.inflight.Inc()
	// The event is built in place in the worker's arena and handed to
	// the recorder whole (RecordOwned): an amortized fraction of an
	// allocation, no copies, nothing touched after publication.
	ev := arena.New()
	ev.Kind = flight.KindQuery
	ev.Unix = start.UnixNano()
	ev.Client = peerAddr(pkt.peer)
	ev.Name = s.zone
	good := false
	defer func() {
		d := time.Since(start)
		s.latency.Observe(d)
		s.wLatency.ObserveAt(start, d)
		if !good {
			s.wBad.IncAt(start)
		}
		ev.Latency = d
		s.events.RecordOwned(ev)
		s.inflight.Dec()
	}()
	defer s.bufs.Put(pkt.data)
	defer func() {
		if r := recover(); r != nil {
			s.panics.Inc()
			s.dropped.Inc()
			ev.Flags |= flight.FlagPanic | flight.FlagErr
			ev.Verdict = "panic"
		}
	}()
	if s.handleHook != nil {
		s.handleHook()
	}
	resp := s.handle((*pkt.data)[:pkt.n], s.maxUDP, ev)
	if a := s.analytics; a != nil && (ev.Verdict == "hit" || ev.Verdict == "miss") {
		a.observeSlow(ev.Client, ev.Addr, ev.Verdict == "hit", uint32(start.UnixMilli()))
	}
	if resp == nil {
		// Unparseable packets drop silently, as real servers do — that is
		// clean handling. An encode failure (FlagErr) is not.
		good = ev.Flags&flight.FlagErr == 0
		return
	}
	if _, err := conn.WriteTo(resp, pkt.peer); err != nil {
		// Every lost response is counted, including the ones that race
		// the shutdown close: Queries - Dropped must equal responses
		// that actually left the socket. A shutdown-race drop is not an
		// error, though — the operator asked for it.
		s.dropped.Inc()
		if errors.Is(err, net.ErrClosed) {
			ev.Verdict = "closed"
		} else {
			ev.Flags |= flight.FlagErr
			ev.Detail = "response write failed"
		}
		return
	}
	good = true
}

// peerAddr extracts the peer's IPv4 address for the wide event (0 when
// the peer is not UDP/IPv4).
func peerAddr(a net.Addr) netaddr.Addr {
	u, ok := a.(*net.UDPAddr)
	if !ok {
		return 0
	}
	ip := u.IP.To4()
	if ip == nil {
		return 0
	}
	return netaddr.MakeAddr(ip[0], ip[1], ip[2], ip[3])
}

// handle builds the response bytes for one query packet, or nil to
// drop, annotating the packet's wide event with the subject address and
// the one-word verdict. maxSize bounds the encoded response: anything
// larger is re-encoded as header + question with the TC bit set (the
// client retries over TCP). TCP callers pass maxMessage, which no
// DNSBL answer can exceed.
func (s *Server) handle(pkt []byte, maxSize int, ev *flight.Event) []byte {
	q, err := Decode(pkt)
	if err != nil || q.Response || len(q.Questions) != 1 {
		s.malformed.Inc()
		ev.Verdict = "malformed"
		return nil
	}
	s.queries.Inc()
	list := s.list.Load().matcher

	question := q.Questions[0]
	resp := &Message{
		ID:                 q.ID,
		Response:           true,
		Authoritative:      true,
		RecursionDesired:   q.RecursionDesired,
		RecursionAvailable: false,
		Questions:          []Question{question},
	}
	addr, ok := ParseQueryName(question.Name, s.zone)
	switch {
	case !ok:
		resp.RCode = RCodeNXDomain
		ev.Verdict = "badname"
	case question.Type != TypeA || question.Class != ClassIN:
		resp.RCode = RCodeOK // name exists; no data of that type
		ev.Verdict = "nodata"
	default:
		ev.Addr = addr
		entry, listed := list.Lookup(addr)
		if !listed {
			resp.RCode = RCodeNXDomain
			ev.Verdict = "miss"
		} else {
			s.hits.Inc()
			ev.Verdict = "hit"
			ev.Flags |= flight.FlagHit
			code := codeFor(entry.Reason)
			o0, o1, o2, o3 := code.Octets()
			resp.Answers = append(resp.Answers, Answer{
				Name:  question.Name,
				Type:  TypeA,
				Class: ClassIN,
				TTL:   s.ttl,
				Data:  []byte{o0, o1, o2, o3},
			})
		}
	}
	out, err := resp.Encode()
	if err == nil && len(out) > maxSize {
		// Too big for the transport: answer with TC set and no records,
		// steering the client to retry over TCP (RFC 1035 §4.2.1).
		resp.Answers = nil
		resp.Truncated = true
		ev.Verdict = "truncated"
		out, err = resp.Encode()
	}
	if err != nil {
		ev.Verdict = "encode_error"
		ev.Flags |= flight.FlagErr
		return nil
	}
	return out
}

func codeFor(reason string) netaddr.Addr {
	r := strings.ToLower(reason)
	switch {
	case strings.Contains(r, "bot"):
		return CodeBot
	case strings.Contains(r, "scan"):
		return CodeScan
	case strings.Contains(r, "spam"):
		return CodeSpam
	case strings.Contains(r, "phish"):
		return CodePhish
	}
	return CodeGeneric
}

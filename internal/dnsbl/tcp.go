package dnsbl

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"unclean/internal/netaddr"
	"unclean/internal/obs/flight"
)

// tcpIdleTimeout bounds how long a TCP client may sit between queries;
// DNSBL exchanges are one round trip, so anything slower is a stuck or
// hostile peer holding a connection slot.
const tcpIdleTimeout = 10 * time.Second

// ServeTCP answers length-prefixed DNS queries on ln until the listener
// is closed or ctx is canceled (RFC 1035 §4.2.2 framing: two-byte
// big-endian length before each message). It exists for one purpose:
// answers that did not fit the UDP limit come back truncated with the
// TC bit set, and the client retries here, where the 512-byte ceiling
// does not apply. Queries share the UDP path's counters, flight events,
// and blocklist, so a TC retry is just another query in the stats.
//
// Each connection is handled on its own goroutine with panic isolation
// and an idle deadline; multiple queries per connection are allowed.
func (s *Server) ServeTCP(ctx context.Context, ln net.Listener) error {
	stopCloser := make(chan struct{})
	var closerWG sync.WaitGroup
	closerWG.Add(1)
	go func() {
		defer closerWG.Done()
		select {
		case <-ctx.Done():
			ln.Close() //nolint:errcheck // best effort; Accept observes ErrClosed
		case <-stopCloser:
		}
	}()

	var wg sync.WaitGroup
	var acceptErr error
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() == nil && !errors.Is(err, net.ErrClosed) {
				var nerr net.Error
				if errors.As(err, &nerr) && nerr.Timeout() {
					continue
				}
				acceptErr = err
			}
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Cancellation must unblock conn reads too, not just Accept.
			stop := context.AfterFunc(ctx, func() { conn.Close() })
			defer stop()
			s.serveTCPConn(conn)
		}()
	}
	wg.Wait()
	close(stopCloser)
	closerWG.Wait()
	return acceptErr
}

// serveTCPConn answers queries on one TCP connection until the peer
// hangs up, misbehaves, or idles out.
func (s *Server) serveTCPConn(conn net.Conn) {
	defer conn.Close()
	defer func() {
		if r := recover(); r != nil {
			s.panics.Inc()
			s.dropped.Inc()
		}
	}()
	var arena flight.Arena
	var lenb [2]byte
	buf := make([]byte, maxMessage)
	for {
		if err := conn.SetDeadline(time.Now().Add(tcpIdleTimeout)); err != nil {
			return
		}
		if _, err := io.ReadFull(conn, lenb[:]); err != nil {
			return // EOF, idle timeout, or shutdown close — all final
		}
		n := int(binary.BigEndian.Uint16(lenb[:]))
		if n == 0 || n > maxMessage {
			return // framing violation; drop the connection
		}
		if _, err := io.ReadFull(conn, buf[:n]); err != nil {
			return
		}
		start := time.Now()
		ev := arena.New()
		ev.Kind = flight.KindQuery
		ev.Unix = start.UnixNano()
		ev.Client = peerTCPAddr(conn.RemoteAddr())
		ev.Name = s.zone
		// maxMessage, not maxUDP: TCP is the escape hatch the TC bit
		// points at, so the full answer always fits.
		resp := s.handle(buf[:n], maxMessage, ev)
		good := resp != nil && ev.Flags&flight.FlagErr == 0
		if resp != nil {
			binary.BigEndian.PutUint16(lenb[:], uint16(len(resp)))
			if _, err := conn.Write(lenb[:]); err == nil {
				_, err = conn.Write(resp)
				if err != nil {
					good = false
				}
			} else {
				good = false
			}
			if !good {
				s.dropped.Inc()
				ev.Flags |= flight.FlagErr
				ev.Detail = "tcp response write failed"
			}
		}
		d := time.Since(start)
		s.latency.Observe(d)
		s.wLatency.ObserveAt(start, d)
		if !good && resp != nil {
			s.wBad.IncAt(start)
		}
		ev.Latency = d
		s.events.RecordOwned(ev)
		if resp == nil {
			return // malformed over TCP: counted by handle, drop the conn
		}
	}
}

// peerTCPAddr extracts the peer's IPv4 address for the wide event (0
// when the peer is not TCP/IPv4).
func peerTCPAddr(a net.Addr) netaddr.Addr {
	t, ok := a.(*net.TCPAddr)
	if !ok {
		return 0
	}
	ip := t.IP.To4()
	if ip == nil {
		return 0
	}
	return netaddr.MakeAddr(ip[0], ip[1], ip[2], ip[3])
}

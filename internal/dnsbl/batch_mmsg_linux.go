//go:build linux && (amd64 || arm64)

package dnsbl

import (
	"net"
	"syscall"
	"unsafe"

	"unclean/internal/netaddr"
)

// Batched UDP syscalls via raw recvmmsg/sendmmsg. The standard library
// reads and writes one datagram per syscall; at DNSBL line rate the
// syscall boundary — not the lookup — is the wall. recvmmsg drains up
// to a full batch of queries in one trap and sendmmsg pushes the whole
// batch of responses back in one more, cutting the per-packet syscall
// cost by the batch factor. The raw syscall numbers are declared
// per-arch in mmsg_sysnum_*.go because the bootstrap-era syscall
// package predates sendmmsg; everything else (Msghdr, Iovec, sockaddr
// layouts) comes from the standard library, so no external module is
// needed.
//
// The batcher integrates with the runtime poller through
// syscall.RawConn: the fd stays in non-blocking mode, EAGAIN parks the
// goroutine in the netpoller, and closing the conn wakes it with
// net.ErrClosed — which is exactly the sharded server's shutdown
// signal.

// sockaddrSlot bytes hold a sockaddr_in or sockaddr_in6 — the peer
// address recvmmsg writes and sendmmsg echoes back verbatim, so
// responses never parse or rebuild addresses.
const sockaddrSlot = syscall.SizeofSockaddrInet6

// mmsghdr mirrors struct mmsghdr on linux/{amd64,arm64}: a msghdr plus
// the received length, padded to 8-byte alignment.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

type mmsgBatcher struct {
	conn *net.UDPConn
	rc   syscall.RawConn

	ms []batchMsg // the shard's slots; iovecs below alias their buffers

	names    [][sockaddrSlot]byte
	nameLens []uint32

	riovs []syscall.Iovec
	rhdrs []mmsghdr

	siovs []syscall.Iovec
	shdrs []mmsghdr
	sidx  []int // shdrs[k] carries ms[sidx[k]]
}

// newMmsgBatcher wires a batcher over conn's raw fd, pre-pointing one
// iovec at every slot's in-buffer so a receive is a single syscall with
// zero per-batch setup. Returns nil when the raw conn is unavailable
// (the caller falls back to the portable path).
func newMmsgBatcher(conn *net.UDPConn, ms []batchMsg) batchIO {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil
	}
	b := &mmsgBatcher{
		conn:     conn,
		rc:       rc,
		ms:       ms,
		names:    make([][sockaddrSlot]byte, len(ms)),
		nameLens: make([]uint32, len(ms)),
		riovs:    make([]syscall.Iovec, len(ms)),
		rhdrs:    make([]mmsghdr, len(ms)),
		siovs:    make([]syscall.Iovec, len(ms)),
		shdrs:    make([]mmsghdr, len(ms)),
		sidx:     make([]int, len(ms)),
	}
	for i := range ms {
		b.riovs[i].Base = &ms[i].in[0]
		b.riovs[i].SetLen(len(ms[i].in))
		h := &b.rhdrs[i].hdr
		h.Name = &b.names[i][0]
		h.Namelen = sockaddrSlot
		h.Iov = &b.riovs[i]
		h.Iovlen = 1
	}
	return b
}

func (b *mmsgBatcher) ReadBatch(ms []batchMsg) (int, error) {
	var n int
	var errno syscall.Errno
	err := b.rc.Read(func(fd uintptr) bool {
		for i := range ms {
			b.rhdrs[i].hdr.Namelen = sockaddrSlot
			b.rhdrs[i].n = 0
		}
		r1, _, e := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&b.rhdrs[0])), uintptr(len(ms)), 0, 0, 0)
		n, errno = int(r1), e
		return errno != syscall.EAGAIN
	})
	if err != nil {
		return 0, err // conn closed (net.ErrClosed) or poller failure
	}
	switch errno {
	case 0:
	case syscall.EINTR:
		return 0, nil // retry at the next loop turn
	default:
		return 0, errno
	}
	for i := 0; i < n; i++ {
		m := &ms[i]
		m.inN = int(b.rhdrs[i].n)
		b.nameLens[i] = b.rhdrs[i].hdr.Namelen
		m.peer = nil
		m.client = clientFromSockaddr(&b.names[i])
	}
	return n, nil
}

func (b *mmsgBatcher) WriteBatch(ms []batchMsg) error {
	// Gather the slots that produced responses into a dense msgvec,
	// echoing each peer's raw sockaddr exactly as received.
	k := 0
	for i := range ms {
		m := &ms[i]
		if m.outN == 0 {
			continue
		}
		b.siovs[k].Base = &m.out[0]
		b.siovs[k].SetLen(m.outN)
		h := &b.shdrs[k].hdr
		h.Name = &b.names[i][0]
		h.Namelen = b.nameLens[i]
		h.Iov = &b.siovs[k]
		h.Iovlen = 1
		b.shdrs[k].n = 0
		b.sidx[k] = i
		k++
	}
	sent := 0
	for sent < k {
		var m int
		var errno syscall.Errno
		err := b.rc.Write(func(fd uintptr) bool {
			r1, _, e := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&b.shdrs[sent])), uintptr(k-sent), 0, 0, 0)
			m, errno = int(r1), e
			return errno != syscall.EAGAIN
		})
		if err != nil {
			for ; sent < k; sent++ {
				ms[b.sidx[sent]].sendErr = true
			}
			return err
		}
		switch errno {
		case 0:
			sent += m
		case syscall.EINTR:
		case syscall.ENOBUFS:
			// Transmit queue full: the send-side shed valve. Drop this
			// response, keep the rest moving.
			ms[b.sidx[sent]].sendShed = true
			sent++
		default:
			// Per-destination failure (e.g. ECONNREFUSED from a prior
			// ICMP error): skip the head message and continue.
			ms[b.sidx[sent]].sendErr = true
			sent++
		}
	}
	return nil
}

func (b *mmsgBatcher) LocalAddr() net.Addr { return b.conn.LocalAddr() }
func (b *mmsgBatcher) Close() error        { return b.conn.Close() }

// clientFromSockaddr extracts the peer's IPv4 address from a raw
// sockaddr (0 when the peer is IPv6 and not v4-mapped). sa_family_t is
// host-endian u16; both supported arches are little-endian.
func clientFromSockaddr(sa *[sockaddrSlot]byte) netaddr.Addr {
	switch uint16(sa[0]) | uint16(sa[1])<<8 {
	case syscall.AF_INET:
		return netaddr.MakeAddr(sa[4], sa[5], sa[6], sa[7])
	case syscall.AF_INET6:
		// v4-mapped ::ffff:a.b.c.d — bytes 8..23 are the address.
		if sa[18] == 0xff && sa[19] == 0xff {
			mapped := true
			for i := 8; i < 18; i++ {
				if sa[i] != 0 {
					mapped = false
					break
				}
			}
			if mapped {
				return netaddr.MakeAddr(sa[20], sa[21], sa[22], sa[23])
			}
		}
	}
	return 0
}

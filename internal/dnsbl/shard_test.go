package dnsbl

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"unclean/internal/blocklist"
	"unclean/internal/netaddr"
	"unclean/internal/obs/flight"
)

// shardTestList lists three /24s with distinct reasons, so verdicts
// carry distinguishable return codes.
func shardTestList() *blocklist.Trie {
	list := &blocklist.Trie{}
	list.Insert(netaddr.MustParseBlock("10.1.1.0/24"), "bot")
	list.Insert(netaddr.MustParseBlock("10.2.2.0/24"), "spam")
	list.Insert(netaddr.MustParseBlock("10.3.3.0/24"), "misc")
	return list
}

// TestListenShards binds a shard group and checks every socket landed on
// the same port (SO_REUSEPORT platforms get several, others one).
func TestListenShards(t *testing.T) {
	conns, err := ListenShards("127.0.0.1:0", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	if supportsReusePort {
		if len(conns) != 3 {
			t.Fatalf("got %d conns, want 3 (SO_REUSEPORT supported)", len(conns))
		}
	} else if len(conns) != 1 {
		t.Fatalf("got %d conns, want 1 on a non-reuseport platform", len(conns))
	}
	addr := conns[0].LocalAddr().String()
	for i, c := range conns {
		if c.LocalAddr().String() != addr {
			t.Errorf("conn %d bound %s, want %s", i, c.LocalAddr(), addr)
		}
	}
}

// TestServeConnsEndToEnd runs the sharded server over real SO_REUSEPORT
// sockets, drives it with the ordinary client, and checks answers,
// counter rollup, shard snapshots, and graceful shutdown.
func TestServeConnsEndToEnd(t *testing.T) {
	srv, err := NewServer("bl.shard.example", shardTestList(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	conns, err := ListenShards("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	addr := conns[0].LocalAddr().String()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeConns(ctx, conns, ShardConfig{}) }()

	probes := []struct {
		addr   string
		listed bool
		code   netaddr.Addr
	}{
		{"10.1.1.9", true, CodeBot},
		{"10.2.2.200", true, CodeSpam},
		{"10.3.3.3", true, CodeGeneric},
		{"10.4.4.4", false, 0},
		{"192.0.2.1", false, 0},
	}
	for _, pr := range probes {
		listed, code, err := Lookup(addr, "bl.shard.example", netaddr.MustParseAddr(pr.addr), 2*time.Second)
		if err != nil {
			t.Fatalf("lookup %s: %v", pr.addr, err)
		}
		if listed != pr.listed || (listed && code != pr.code) {
			t.Errorf("lookup %s = listed=%v code=%s, want listed=%v code=%s",
				pr.addr, listed, code, pr.listed, pr.code)
		}
	}

	st := srv.Snapshot()
	if st.Queries < uint64(len(probes)) {
		t.Errorf("Queries = %d, want >= %d", st.Queries, len(probes))
	}
	if st.Hits < 3 {
		t.Errorf("Hits = %d, want >= 3", st.Hits)
	}
	ss := srv.ShardSnapshots()
	if ss == nil {
		t.Fatal("ShardSnapshots = nil after ServeConns")
	}
	var pkts, fast uint64
	for _, s := range ss {
		pkts += s.Packets
		fast += s.FastPath
	}
	if pkts < uint64(len(probes)) || fast != pkts {
		t.Errorf("shard rollup: packets=%d fastpath=%d, want >= %d and equal", pkts, fast, len(probes))
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("ServeConns: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeConns did not exit on cancellation")
	}
}

// TestFastSlowCodecEquivalence is the differential test holding the
// zero-copy fast path to byte-equality with the allocating slow path,
// across listed/unlisted addresses, reasons, RD values, query IDs,
// mixed-case names, and the TC-truncation threshold.
func TestFastSlowCodecEquivalence(t *testing.T) {
	srv, err := NewServer("bl.shard.example", shardTestList(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{"10.1.1.9", "10.2.2.1", "10.3.3.255", "10.4.4.4", "0.0.0.0", "255.255.255.255", "192.0.2.55"}
	for _, maxUDP := range []int{maxMessage, 40} {
		for _, a := range addrs {
			for _, rd := range []bool{false, true} {
				for _, upper := range []bool{false, true} {
					name := QueryName(netaddr.MustParseAddr(a), "bl.shard.example")
					if upper {
						name = QueryName(netaddr.MustParseAddr(a), "BL.Shard.EXAMPLE")
					}
					q := &Message{ID: 0x1234, RecursionDesired: rd,
						Questions: []Question{{Name: name, Type: TypeA, Class: ClassIN}}}
					pkt, err := q.Encode()
					if err != nil {
						t.Fatal(err)
					}

					qa, qlen, qrd, ok := parseFastQuery(pkt, srv.zoneWire)
					if !ok {
						t.Fatalf("fast path rejected canonical query for %s (upper=%v)", a, upper)
					}
					if qrd != rd || qa != netaddr.MustParseAddr(a) {
						t.Fatalf("fast parse %s: addr=%s rd=%v, want %s/%v", a, qa, qrd, a, rd)
					}
					cl := srv.list.Load()
					entry, listed := cl.matcher.Lookup(qa)
					var code netaddr.Addr
					if listed {
						code = codeFor(entry.Reason)
					}
					var out [outSlotSize]byte
					n := encodeFastResponse(out[:], pkt, qlen, listed, code, srv.ttl, maxUDP)

					var ev flight.Event
					slow := srv.handle(pkt, maxUDP, &ev)
					if slow == nil {
						t.Fatalf("slow path dropped canonical query for %s", a)
					}
					if !bytes.Equal(out[:n], slow) {
						t.Errorf("codec divergence for %s (rd=%v upper=%v maxUDP=%d):\n fast %x\n slow %x",
							a, rd, upper, maxUDP, out[:n], slow)
					}
				}
			}
		}
	}
}

// TestFastParseRejectsNonFastShapes: everything the zero-copy parser
// cannot prove is the canonical shape must fall to the slow path, never
// misparse.
func TestFastParseRejectsNonFastShapes(t *testing.T) {
	srv, err := NewServer("bl.shard.example", shardTestList(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(mut func(m *Message)) []byte {
		m := &Message{ID: 9, Questions: []Question{{
			Name: QueryName(netaddr.MustParseAddr("10.1.1.9"), "bl.shard.example"),
			Type: TypeA, Class: ClassIN}}}
		mut(m)
		pkt, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return pkt
	}
	cases := map[string][]byte{
		"response bit":  mk(func(m *Message) { m.Response = true }),
		"txt qtype":     mk(func(m *Message) { m.Questions[0].Type = TypeTXT }),
		"wrong zone":    mk(func(m *Message) { m.Questions[0].Name = "9.1.1.10.bl.other.example" }),
		"three labels":  mk(func(m *Message) { m.Questions[0].Name = "1.1.10.bl.shard.example" }),
		"octet too big": mk(func(m *Message) { m.Questions[0].Name = "9.1.1.256.bl.shard.example" }),
		"leading zero":  mk(func(m *Message) { m.Questions[0].Name = "09.1.1.10.bl.shard.example" }),
		"two questions": mk(func(m *Message) { m.Questions = append(m.Questions, m.Questions[0]) }),
		"empty":         {},
		"short header":  {0, 1, 2},
	}
	for name, pkt := range cases {
		if _, _, _, ok := parseFastQuery(pkt, srv.zoneWire); ok {
			t.Errorf("fast path accepted %s", name)
		}
	}
}

// TestVerdictCacheGenerationSwap drives one shard by hand through a
// blocklist reload and asserts the cache serves repeats within a
// generation but never across one — the no-stale-verdicts invariant.
func TestVerdictCacheGenerationSwap(t *testing.T) {
	srv, err := NewServer("bl.shard.example", shardTestList(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	sh := srv.newShard(0, nil, ShardConfig{}.withDefaults(1))
	q := encodeQuery(t, 7, "10.1.1.9", "bl.shard.example")

	ask := func() (bool, netaddr.Addr) {
		t.Helper()
		m := &sh.msgs[0]
		m.inN = copy(m.in, q)
		srv.serveMsg(sh, m, srv.list.Load())
		if m.outN == 0 {
			t.Fatal("no response encoded")
		}
		resp, err := Decode(m.out[:m.outN])
		if err != nil {
			t.Fatal(err)
		}
		if resp.RCode == RCodeNXDomain {
			return false, 0
		}
		if len(resp.Answers) != 1 {
			t.Fatalf("response has %d answers", len(resp.Answers))
		}
		d := resp.Answers[0].Data
		return true, netaddr.MakeAddr(d[0], d[1], d[2], d[3])
	}

	if listed, code := ask(); !listed || code != CodeBot {
		t.Fatalf("gen1 first ask: listed=%v code=%s, want bot", listed, code)
	}
	if hits := sh.cacheHits.Value(); hits != 0 {
		t.Fatalf("cold cache reported %d hits", hits)
	}
	if listed, code := ask(); !listed || code != CodeBot {
		t.Fatalf("gen1 second ask: listed=%v code=%s", listed, code)
	}
	if hits := sh.cacheHits.Value(); hits != 1 {
		t.Fatalf("warm same-generation ask: %d cache hits, want 1", hits)
	}

	// Reload 1: the block vanishes. The cached "bot" verdict is one
	// generation old and must not be served.
	gone := &blocklist.Trie{}
	gone.Insert(netaddr.MustParseBlock("10.9.9.0/24"), "bot")
	srv.SetList(gone)
	if listed, _ := ask(); listed {
		t.Fatal("stale-generation cache hit: delisted address still listed")
	}
	if hits := sh.cacheHits.Value(); hits != 1 {
		t.Fatalf("cross-generation ask used the cache: %d hits", hits)
	}

	// Reload 2: relisted under a different reason; the gen-2 "miss"
	// entry must not be served either.
	relisted := &blocklist.Trie{}
	relisted.Insert(netaddr.MustParseBlock("10.1.1.0/24"), "spam")
	srv.SetList(relisted)
	if listed, code := ask(); !listed || code != CodeSpam {
		t.Fatalf("after relist: listed=%v code=%s, want spam", listed, code)
	}
	// And within generation 3 the new verdict caches normally.
	if listed, code := ask(); !listed || code != CodeSpam {
		t.Fatalf("gen3 warm ask: listed=%v code=%s", listed, code)
	}
	if hits := sh.cacheHits.Value(); hits != 2 {
		t.Fatalf("gen3 warm ask: %d cache hits, want 2", hits)
	}
}

// TestShardedTruncationAndTCPRetry forces UDP truncation with a small
// -max-udp and checks the full TC path end to end: the sharded UDP
// server answers TC, the client retries over TCP against ServeTCP, and
// the verdict comes back complete.
func TestShardedTruncationAndTCPRetry(t *testing.T) {
	srv, err := NewServer("bl.shard.example", shardTestList(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetMaxUDPSize(50) // hit answers (~62 bytes) truncate; the question echo fits

	conns, err := ListenShards("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	addr := conns[0].LocalAddr().String()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	udpDone := make(chan error, 1)
	tcpDone := make(chan error, 1)
	go func() { udpDone <- srv.ServeConns(ctx, conns, ShardConfig{}) }()
	go func() { tcpDone <- srv.ServeTCP(ctx, ln) }()

	listed, code, err := Lookup(addr, "bl.shard.example", netaddr.MustParseAddr("10.2.2.9"), 2*time.Second)
	if err != nil {
		t.Fatalf("truncated lookup: %v", err)
	}
	if !listed || code != CodeSpam {
		t.Fatalf("truncated lookup = listed=%v code=%s, want spam", listed, code)
	}
	// Misses fit under the shrunk limit and must not detour to TCP.
	listed, _, err = Lookup(addr, "bl.shard.example", netaddr.MustParseAddr("192.0.2.1"), 2*time.Second)
	if err != nil || listed {
		t.Fatalf("miss lookup = listed=%v err=%v", listed, err)
	}

	cancel()
	for name, ch := range map[string]chan error{"udp": udpDone, "tcp": tcpDone} {
		select {
		case err := <-ch:
			if err != nil {
				t.Errorf("%s serve: %v", name, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s serve did not exit on cancellation", name)
		}
	}
}

// TestServeTCPDirect speaks the RFC 1035 §4.2.2 framing by hand:
// several queries on one connection, then a framing violation that must
// drop the connection without killing the listener.
func TestServeTCPDirect(t *testing.T) {
	srv, err := NewServer("bl.shard.example", shardTestList(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeTCP(ctx, ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	for i, probe := range []string{"10.1.1.9", "10.4.4.4"} {
		pkt := encodeQuery(t, uint16(i+1), probe, "bl.shard.example")
		framed := append([]byte{byte(len(pkt) >> 8), byte(len(pkt))}, pkt...)
		if _, err := conn.Write(framed); err != nil {
			t.Fatal(err)
		}
		var lenb [2]byte
		if _, err := readFull(conn, lenb[:]); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		n := int(lenb[0])<<8 | int(lenb[1])
		buf := make([]byte, n)
		if _, err := readFull(conn, buf); err != nil {
			t.Fatal(err)
		}
		resp, err := Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if resp.ID != uint16(i+1) || !resp.Response || resp.Truncated {
			t.Fatalf("query %d: bad response header %+v", i, resp)
		}
		wantListed := i == 0
		if gotListed := resp.RCode != RCodeNXDomain; gotListed != wantListed {
			t.Fatalf("query %d: listed=%v, want %v", i, gotListed, wantListed)
		}
	}
	// Framing violation: a zero-length frame ends the connection.
	if _, err := conn.Write([]byte{0, 0}); err != nil {
		t.Fatal(err)
	}
	var one [1]byte
	if _, err := conn.Read(one[:]); err == nil {
		t.Fatal("connection survived a framing violation")
	}

	// The listener is still alive for new connections.
	c2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c2.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("ServeTCP: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeTCP did not exit on cancellation")
	}
}

// readFull is io.ReadFull without the import dance in assertions.
func readFull(conn net.Conn, buf []byte) (int, error) {
	read := 0
	for read < len(buf) {
		n, err := conn.Read(buf[read:])
		read += n
		if err != nil {
			return read, err
		}
	}
	return read, nil
}

// TestShardConfigDefaults pins the zero-value and clamping behavior the
// docs promise.
func TestShardConfigDefaults(t *testing.T) {
	cases := []struct {
		in    ShardConfig
		conns int
		want  ShardConfig
	}{
		{ShardConfig{}, 4, ShardConfig{Shards: 4, Batch: defaultBatch, CacheBits: defaultCacheBits}},
		{ShardConfig{Shards: 2, Batch: 9999, CacheBits: 30}, 1, ShardConfig{Shards: 2, Batch: maxBatch, CacheBits: maxCacheBits}},
		{ShardConfig{CacheBits: -1}, 1, ShardConfig{Shards: 1, Batch: defaultBatch, CacheBits: -1}},
	}
	for i, c := range cases {
		if got := c.in.withDefaults(c.conns); got != c.want {
			t.Errorf("case %d: withDefaults = %+v, want %+v", i, got, c.want)
		}
	}
}

// TestServeConnsSharesOneConn runs more shards than sockets (the
// portable fallback topology) and checks the loops coexist on a shared
// conn.
func TestServeConnsSharesOneConn(t *testing.T) {
	srv, err := NewServer("bl.shard.example", shardTestList(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- srv.ServeConns(ctx, []net.PacketConn{conn}, ShardConfig{Shards: 3, Batch: 4})
	}()
	for i := 0; i < 20; i++ {
		listed, _, err := Lookup(conn.LocalAddr().String(), "bl.shard.example",
			netaddr.MustParseAddr(fmt.Sprintf("10.1.1.%d", i+1)), 2*time.Second)
		if err != nil || !listed {
			t.Fatalf("shared-conn lookup %d: listed=%v err=%v", i, listed, err)
		}
	}
	if ss := srv.ShardSnapshots(); len(ss) != 3 {
		t.Errorf("got %d shard snapshots, want 3", len(ss))
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("ServeConns: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeConns did not exit on cancellation")
	}
}

package dnsbl

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"unclean/internal/netaddr"
	"unclean/internal/retry"
)

// queryID returns an unpredictable DNS query ID. A guessable ID (the old
// code derived it from the wall clock) lets an off-path attacker spoof
// answers; crypto/rand closes that. The zero ID is avoided only so
// captures are easier to eyeball.
func queryID() (uint16, error) {
	var b [2]byte
	if _, err := crand.Read(b[:]); err != nil {
		return 0, fmt.Errorf("dnsbl: query id: %w", err)
	}
	id := binary.BigEndian.Uint16(b[:])
	if id == 0 {
		id = 1
	}
	return id, nil
}

// DefaultLookupPolicy is the retry schedule Lookup uses: a lost UDP
// datagram costs one per-attempt timeout, then an immediate resend.
func DefaultLookupPolicy() retry.Policy {
	return retry.Policy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Jitter: 1}
}

// Lookup performs a DNSBL query against server (a UDP address) and
// reports whether addr is listed, with the return code when it is. Lost
// packets are retried per DefaultLookupPolicy; timeout bounds each
// attempt.
func Lookup(server string, zone string, addr netaddr.Addr, timeout time.Duration) (listed bool, code netaddr.Addr, err error) {
	return LookupCtx(context.Background(), server, zone, addr, timeout, DefaultLookupPolicy())
}

// LookupCtx is Lookup with an explicit context and retry policy. Each
// attempt sends a fresh query (new random ID) and waits up to timeout
// for the matching response, ignoring stray or mismatched packets
// instead of failing on them. Transient failures — attempt timeouts,
// temporary network errors — are retried; malformed responses from the
// server are permanent.
func LookupCtx(ctx context.Context, server, zone string, addr netaddr.Addr, timeout time.Duration, p retry.Policy) (listed bool, code netaddr.Addr, err error) {
	err = retry.Do(ctx, p, func() error {
		var aerr error
		listed, code, aerr = lookupOnce(server, zone, addr, timeout)
		return aerr
	})
	return listed, code, err
}

// lookupOnce runs a single query/response exchange.
func lookupOnce(server, zone string, addr netaddr.Addr, timeout time.Duration) (bool, netaddr.Addr, error) {
	conn, err := net.Dial("udp", server)
	if err != nil {
		return false, 0, err
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return false, 0, err
	}
	id, err := queryID()
	if err != nil {
		return false, 0, retry.Permanent(err)
	}
	q := &Message{
		ID:               id,
		RecursionDesired: true,
		Questions: []Question{{
			Name:  QueryName(addr, zone),
			Type:  TypeA,
			Class: ClassIN,
		}},
	}
	pkt, err := q.Encode()
	if err != nil {
		return false, 0, retry.Permanent(err)
	}
	if _, err := conn.Write(pkt); err != nil {
		return false, 0, err
	}
	buf := make([]byte, maxMessage)
	// Keep reading until the matching response or the deadline: stray
	// datagrams (late answers to a previous attempt, spoofing chaff,
	// misdelivery) must not abort the lookup.
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return false, 0, err // deadline exceeded or socket failure: retryable
		}
		resp, err := Decode(buf[:n])
		if err != nil || resp.ID != q.ID || !resp.Response {
			continue
		}
		if resp.Truncated {
			// TC bit: the full answer did not fit the UDP limit. Retry
			// the same query over TCP (RFC 1035 §4.2.1), reusing what
			// remains of this attempt's deadline.
			return lookupTCP(server, pkt, q.ID, deadline)
		}
		listed, code := answerFrom(resp)
		return listed, code, nil
	}
}

// answerFrom extracts the (listed, code) verdict from a decoded
// response. Split out so the UDP and TCP legs cannot drift.
func answerFrom(resp *Message) (bool, netaddr.Addr) {
	if resp.RCode == RCodeNXDomain {
		return false, 0
	}
	for _, a := range resp.Answers {
		if a.Type == TypeA && len(a.Data) == 4 {
			return true, netaddr.MakeAddr(a.Data[0], a.Data[1], a.Data[2], a.Data[3])
		}
	}
	return false, 0
}

// lookupTCP resends an already-encoded query over TCP with RFC 1035
// §4.2.2 two-byte length framing, for answers the UDP transport
// truncated.
func lookupTCP(server string, pkt []byte, id uint16, deadline time.Time) (bool, netaddr.Addr, error) {
	conn, err := net.Dial("tcp", server)
	if err != nil {
		return false, 0, err
	}
	defer conn.Close()
	if err := conn.SetDeadline(deadline); err != nil {
		return false, 0, err
	}
	framed := make([]byte, 2+len(pkt))
	binary.BigEndian.PutUint16(framed, uint16(len(pkt)))
	copy(framed[2:], pkt)
	if _, err := conn.Write(framed); err != nil {
		return false, 0, err
	}
	var lenb [2]byte
	if _, err := io.ReadFull(conn, lenb[:]); err != nil {
		return false, 0, err
	}
	n := int(binary.BigEndian.Uint16(lenb[:]))
	if n == 0 {
		return false, 0, retry.Permanent(fmt.Errorf("dnsbl: empty TCP response"))
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(conn, buf); err != nil {
		return false, 0, err
	}
	resp, err := Decode(buf)
	if err != nil {
		return false, 0, retry.Permanent(err)
	}
	if resp.ID != id || !resp.Response {
		return false, 0, retry.Permanent(fmt.Errorf("dnsbl: mismatched TCP response"))
	}
	listed, code := answerFrom(resp)
	return listed, code, nil
}

// IsTimeout reports whether err is a deadline-style failure — the
// signature of a lost datagram.
func IsTimeout(err error) bool {
	var nerr net.Error
	return errors.As(err, &nerr) && nerr.Timeout()
}

package dnsbl

import (
	"fmt"
	"strings"

	"unclean/internal/netaddr"
)

// Return codes in the 127.0.0.0/8 convention. Listed addresses answer
// with a code describing why — one bit of the paper's multidimensional
// metric surfaced to queriers.
var (
	CodeGeneric = netaddr.MustParseAddr("127.0.0.2")
	CodeBot     = netaddr.MustParseAddr("127.0.0.3")
	CodeScan    = netaddr.MustParseAddr("127.0.0.4")
	CodeSpam    = netaddr.MustParseAddr("127.0.0.5")
	CodePhish   = netaddr.MustParseAddr("127.0.0.6")
)

// QueryName builds the DNSBL query name for an address: the reversed
// octets prepended to the zone, e.g. 14.135.1.127 + "bl.example" for
// 127.1.135.14.
func QueryName(a netaddr.Addr, zone string) string {
	o0, o1, o2, o3 := a.Octets()
	return fmt.Sprintf("%d.%d.%d.%d.%s", o3, o2, o1, o0, strings.TrimSuffix(zone, "."))
}

// ParseQueryName extracts the queried address from a DNSBL query name,
// verifying the zone suffix (case-insensitively).
func ParseQueryName(name, zone string) (netaddr.Addr, bool) {
	name = strings.TrimSuffix(name, ".")
	zone = strings.TrimSuffix(zone, ".")
	if len(name) <= len(zone) || !strings.EqualFold(name[len(name)-len(zone):], zone) {
		return 0, false
	}
	rest := strings.TrimSuffix(name[:len(name)-len(zone)], ".")
	parts := strings.Split(rest, ".")
	if len(parts) != 4 {
		return 0, false
	}
	// Reassemble in network order: query is d.c.b.a.
	reversed := parts[3] + "." + parts[2] + "." + parts[1] + "." + parts[0]
	a, err := netaddr.ParseAddr(reversed)
	if err != nil {
		return 0, false
	}
	return a, true
}

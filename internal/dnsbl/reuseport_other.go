//go:build !linux

package dnsbl

import "syscall"

// supportsReusePort: without SO_REUSEPORT semantics we can rely on
// (macOS has the constant but different balancing; Windows has none),
// ListenShards binds a single socket and every shard shares it. The
// shard loops, batch arenas, and verdict caches still apply — only the
// kernel-level listener fan-out is lost.
const supportsReusePort = false

func reusePortControl(network, address string, c syscall.RawConn) error { return nil }

package dnsbl

import (
	"errors"
	"net"

	"unclean/internal/netaddr"
	"unclean/internal/obs/flight"
)

// batchMsg is one datagram slot in a shard's reusable batch. The in/out
// byte slices are fixed windows into the shard's buffer arenas —
// allocated once at shard construction and rewritten every batch, never
// reallocated — so a full receive→handle→send cycle touches the
// allocator only for the (amortized, sampled) flight events.
type batchMsg struct {
	in   []byte // request slot (maxMessage bytes)
	inN  int    // request length for this batch
	out  []byte // response slot (outSlotSize bytes)
	outN int    // response length; 0 = nothing to send

	// peer is the reply address on the portable path; the mmsg path
	// leaves it nil and echoes the raw sockaddr it received instead.
	peer net.Addr
	// client is the peer's IPv4 address when known (wide events).
	client netaddr.Addr

	// ev is the packet's pending wide event, recorded after the batch
	// is sent so it can carry latency and send-failure flags. nil for
	// unsampled healthy fast-path packets.
	ev *flight.Event
	// sendShed marks a response abandoned on a transient send fault
	// (socket buffer pressure, injected loss) — the send-side shed
	// valve. sendErr marks a response lost to a hard write error.
	sendShed, sendErr bool
}

// batchIO abstracts batched datagram I/O so one shard loop runs over
// recvmmsg/sendmmsg syscalls on Linux and over any net.PacketConn
// elsewhere — including the fault-injecting conns the chaos tests wrap
// around real sockets. Implementations are single-shard: they are
// called from exactly one goroutine and may pre-wire internal state to
// the msgs slice handed to newBatcher.
type batchIO interface {
	// ReadBatch blocks until at least one datagram is available and
	// fills message slots from the front of ms, returning the count.
	ReadBatch(ms []batchMsg) (int, error)
	// WriteBatch sends every slot in ms with outN > 0, marking
	// per-slot send faults in sendShed/sendErr. The returned error is
	// terminal (closed socket), not a per-message failure.
	WriteBatch(ms []batchMsg) error
	LocalAddr() net.Addr
	Close() error
}

// newBatcher picks the fastest batchIO for conn: the recvmmsg/sendmmsg
// implementation when the platform and socket support it, else the
// portable one-datagram-per-syscall fallback.
func newBatcher(conn net.PacketConn, ms []batchMsg) batchIO {
	if u, ok := conn.(*net.UDPConn); ok {
		if b := newMmsgBatcher(u, ms); b != nil {
			return b
		}
	}
	return &connBatcher{conn: conn}
}

// connBatcher is the portable fallback: one ReadFrom/WriteTo syscall
// per datagram over any net.PacketConn. Batches degenerate to size 1 on
// the read side — there is no portable way to ask "how many datagrams
// are queued" without deadline games — but the shard loop, verdict
// cache, and zero-copy encode all still apply.
type connBatcher struct {
	conn net.PacketConn
}

func (b *connBatcher) ReadBatch(ms []batchMsg) (int, error) {
	m := &ms[0]
	n, peer, err := b.conn.ReadFrom(m.in)
	if err != nil {
		return 0, err
	}
	m.inN = n
	m.peer = peer
	m.client = peerAddr(peer)
	return 1, nil
}

func (b *connBatcher) WriteBatch(ms []batchMsg) error {
	for i := range ms {
		m := &ms[i]
		if m.outN == 0 {
			continue
		}
		if _, err := b.conn.WriteTo(m.out[:m.outN], m.peer); err != nil {
			if errors.Is(err, net.ErrClosed) {
				m.sendErr = true
				return err
			}
			var nerr net.Error
			if errors.As(err, &nerr) && (nerr.Timeout() || isTemporary(nerr)) {
				m.sendShed = true
				continue
			}
			m.sendErr = true
		}
	}
	return nil
}

func (b *connBatcher) LocalAddr() net.Addr { return b.conn.LocalAddr() }
func (b *connBatcher) Close() error        { return b.conn.Close() }

// isTemporary reports the deprecated-but-still-signaled Temporary
// facet; the faults package and kernel ENOBUFS both carry it.
func isTemporary(err error) bool {
	var t interface{ Temporary() bool }
	return errors.As(err, &t) && t.Temporary()
}

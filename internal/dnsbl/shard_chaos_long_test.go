//go:build chaos_long

package dnsbl

// Long-haul shard chaos, build-tagged chaos_long: the reload hammer and
// send-fault soak from shard_chaos_test.go run an order of magnitude
// longer, with more shards and faults active at the same time as the
// reloads. CI runs these under -race in the dedicated chaos job.

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"unclean/internal/blocklist"
	"unclean/internal/faults"
	"unclean/internal/netaddr"
	"unclean/internal/retry"
	"unclean/internal/stats"
)

func TestChaosLongShardedReloadHammerWithFaults(t *testing.T) {
	listBot := &blocklist.Trie{}
	listBot.Insert(netaddr.MustParseBlock("10.1.1.0/24"), "bot")
	listSpam := &blocklist.Trie{}
	listSpam.Insert(netaddr.MustParseBlock("10.1.1.0/24"), "spam")

	srv, err := NewServer("bl.chaos.example", listBot, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Faults and reloads at once: 20% of response writes fail while the
	// list swaps continuously under four shards.
	flaky := faults.NewFlakyConn(conn, faults.ConnConfig{WriteErr: 0.2}, 20061015)
	addr := conn.LocalAddr().String()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- srv.ServeConns(ctx, []net.PacketConn{flaky}, ShardConfig{Shards: 4, Batch: 8})
	}()

	var stopSwaps atomic.Bool
	swapped := make(chan struct{})
	go func() {
		defer close(swapped)
		for i := 0; !stopSwaps.Load(); i++ {
			if i%2 == 0 {
				srv.SetList(listSpam)
			} else {
				srv.SetList(listBot)
			}
		}
		srv.SetList(listSpam)
	}()

	p := retry.Policy{MaxAttempts: 10, BaseDelay: 5 * time.Millisecond,
		MaxDelay: 40 * time.Millisecond, Jitter: 1, RNG: stats.NewRNG(9)}
	probe := netaddr.MustParseAddr("10.1.1.9")
	deadline := time.Now().Add(15 * time.Second)
	lookups := 0
	for time.Now().Before(deadline) {
		listed, code, err := LookupCtx(context.Background(), addr, "bl.chaos.example",
			probe, 200*time.Millisecond, p)
		if err != nil {
			t.Fatalf("lookup %d during long hammer: %v", lookups, err)
		}
		if !listed || (code != CodeBot && code != CodeSpam) {
			t.Fatalf("torn verdict during long hammer: listed=%v code=%s", listed, code)
		}
		lookups++
	}
	stopSwaps.Store(true)
	<-swapped

	for i := 0; i < 50; i++ {
		listed, code, err := LookupCtx(context.Background(), addr, "bl.chaos.example",
			probe, 200*time.Millisecond, p)
		if err != nil {
			t.Fatalf("post-hammer lookup %d: %v", i, err)
		}
		if !listed || code != CodeSpam {
			t.Fatalf("stale-generation verdict after final reload: listed=%v code=%s", listed, code)
		}
	}

	cancel()
	if err := <-done; err != nil {
		t.Errorf("ServeConns: %v", err)
	}
	conn.Close()

	st := srv.Snapshot()
	if st.Shed == 0 {
		t.Error("20% write faults over 15s produced no sheds")
	}
	if st.Dropped != 0 {
		t.Errorf("transient faults miscounted as hard drops: %d", st.Dropped)
	}
	fmt.Printf("chaos long hammer: lookups=%d shed=%d queries=%d gen=%d\n",
		lookups, st.Shed, st.Queries, srv.Generation())
}

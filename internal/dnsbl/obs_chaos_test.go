package dnsbl

// Observability acceptance run: drives the chaos scenarios (overload
// shedding, a tripping feed breaker, checkpoint corruption recovery,
// real UDP query traffic) and asserts the whole story is visible
// through one /metrics scrape — shed, breaker-trip, and
// checkpoint-recovery counters nonzero, and a sane query-latency
// histogram — plus a populated stage-timing table for the pipeline.

import (
	"context"
	"errors"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"unclean/internal/netaddr"
	"unclean/internal/obs"
	"unclean/internal/retry"
	"unclean/internal/tracker"
)

// scrapeValues fetches /metrics from an obs handler and parses every
// plain series line into name{labels} → value.
func scrapeValues(t *testing.T, regs ...*obs.Registry) map[string]float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	obs.Handler(regs...).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	out := make(map[string]float64)
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

func TestChaosPipelineObservability(t *testing.T) {
	trace := obs.NewTrace()

	// Stage 1: serve real traffic over loopback UDP so the latency
	// histogram fills with genuine round-trip handling times.
	spServe := trace.Start("chaos/serve")
	tr := chaosTracker(t)
	srv, err := NewServer("bl.obs.example", chaosList(tr), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, conn) }()
	for i := 0; i < 40; i++ {
		probe := netaddr.MustParseAddr("10.1.1.9") + netaddr.Addr(i%5)
		if _, _, err := Lookup(conn.LocalAddr().String(), "bl.obs.example", probe, time.Second); err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
	}
	spServe.End()

	// Stage 2: overload — a parked worker over a tiny queue forces the
	// reader to shed.
	spOverload := trace.Start("chaos/overload")
	over, err := NewServer("bl.overload.example", chaosList(tr), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	over.SetConcurrency(1, 2)
	block := make(chan struct{})
	parked := make(chan struct{})
	first := true
	over.handleHook = func() {
		if first {
			first = false
			close(parked)
			<-block
		}
	}
	oconn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	octx, ocancel := context.WithCancel(context.Background())
	odone := make(chan error, 1)
	go func() { odone <- over.Serve(octx, oconn) }()
	cl, err := net.Dial("udp", oconn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	q := encodeQuery(t, 1, "10.1.1.9", "bl.overload.example")
	cl.Write(q)
	<-parked
	deadline := time.Now().Add(5 * time.Second)
	for over.Snapshot().Shed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no shedding under sustained overload")
		}
		cl.Write(q)
	}
	close(block)
	cl.Close()
	spOverload.End()

	// Stage 3: a feed that stays broken trips the circuit breaker.
	spBreaker := trace.Start("chaos/breaker")
	br := retry.NewBreaker(2, time.Minute)
	feedErr := errors.New("feed dead")
	br.Record(feedErr)
	br.Record(feedErr)
	if !br.Open() {
		t.Fatal("breaker did not open after threshold failures")
	}
	spBreaker.End()

	// Stage 4: corrupt the primary checkpoint; recovery must fall back
	// to the .prev generation and count both the CRC failure and the
	// recovery.
	spRecover := trace.Start("chaos/recover")
	path := filepath.Join(t.TempDir(), "tracker.ckpt")
	if err := tr.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := tr.SaveFile(path); err != nil { // rotates gen 1 to .prev
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := tracker.LoadFile(path)
	if err != nil {
		t.Fatalf("recovery from .prev failed: %v", err)
	}
	if rec.BlockCount() != tr.BlockCount() {
		t.Fatalf("recovered %d blocks, want %d", rec.BlockCount(), tr.BlockCount())
	}
	spRecover.End()

	// Drain both servers before reading final counters.
	cancel()
	ocancel()
	if err := <-done; err != nil {
		t.Errorf("Serve: %v", err)
	}
	if err := <-odone; err != nil {
		t.Errorf("overload Serve: %v", err)
	}
	conn.Close()
	oconn.Close()

	// One scrape sees the whole story: per-server registries merged with
	// the process default registry.
	vals := scrapeValues(t, obs.Default(), srv.Metrics(), over.Metrics())
	for _, series := range []string{
		`unclean_dnsbl_queries_total{zone="bl.obs.example"}`,
		`unclean_dnsbl_hits_total{zone="bl.obs.example"}`,
		`unclean_dnsbl_shed_total{zone="bl.overload.example"}`,
		"unclean_breaker_trips_total",
		"unclean_checkpoint_prev_recoveries_total",
		"unclean_checkpoint_crc_failures_total",
		"unclean_checkpoint_writes_total",
	} {
		if vals[series] <= 0 {
			t.Errorf("scrape: %s = %v, want > 0", series, vals[series])
		}
	}
	if c := vals[`unclean_dnsbl_query_seconds_count{zone="bl.obs.example"}`]; c < 40 {
		t.Errorf("latency histogram count = %v, want >= 40", c)
	}

	// The latency distribution must be sane: measurable but sub-second
	// on loopback, with ordered quantiles.
	lat := srv.Snapshot().Latency
	if lat.P50 <= 0 || lat.P99 < lat.P50 || lat.P99 >= time.Second {
		t.Errorf("latency quantiles insane: p50=%v p99=%v", lat.P50, lat.P99)
	}

	// The pipeline emitted a stage-timing table covering every stage.
	tbl := trace.Table()
	for _, stage := range []string{"chaos/serve", "chaos/overload", "chaos/breaker", "chaos/recover"} {
		if !strings.Contains(tbl, stage) {
			t.Errorf("stage table missing %s:\n%s", stage, tbl)
		}
	}
	t.Logf("chaos stage timings:\n%s", tbl)
}

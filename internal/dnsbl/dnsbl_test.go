package dnsbl

import (
	"context"
	"net"
	"testing"
	"testing/quick"
	"time"

	"unclean/internal/blocklist"
	"unclean/internal/ipset"
	"unclean/internal/netaddr"
)

func TestQueryNameRoundTrip(t *testing.T) {
	a := netaddr.MustParseAddr("127.1.135.14")
	name := QueryName(a, "bl.example")
	if name != "14.135.1.127.bl.example" {
		t.Fatalf("QueryName = %q", name)
	}
	got, ok := ParseQueryName(name, "bl.example")
	if !ok || got != a {
		t.Fatalf("ParseQueryName = %v, %v", got, ok)
	}
}

func TestQueryNameQuick(t *testing.T) {
	f := func(raw uint32) bool {
		a := netaddr.Addr(raw)
		got, ok := ParseQueryName(QueryName(a, "zen.test."), "ZEN.test")
		return ok && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseQueryNameRejects(t *testing.T) {
	bad := []string{
		"bl.example",           // zone only
		"1.2.3.bl.example",     // 3 octets
		"1.2.3.4.5.bl.example", // 5 octets
		"256.2.3.4.bl.example", // bad octet
		"1.2.3.4.other.zone",   // wrong zone
		"x.2.3.4.bl.example",   // non-numeric
	}
	for _, name := range bad {
		if _, ok := ParseQueryName(name, "bl.example"); ok {
			t.Errorf("ParseQueryName accepted %q", name)
		}
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		ID:               0xbeef,
		RecursionDesired: true,
		Questions: []Question{{
			Name: "2.0.0.10.bl.example", Type: TypeA, Class: ClassIN,
		}},
	}
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != m.ID || got.Response || !got.RecursionDesired || len(got.Questions) != 1 {
		t.Fatalf("round trip = %+v", got)
	}
	if got.Questions[0].Name != m.Questions[0].Name {
		t.Fatalf("name = %q", got.Questions[0].Name)
	}
}

func TestMessageWithCompressedAnswer(t *testing.T) {
	m := &Message{
		ID: 7, Response: true, Authoritative: true,
		Questions: []Question{{Name: "2.0.0.10.bl.example", Type: TypeA, Class: ClassIN}},
		Answers: []Answer{{
			Name: "2.0.0.10.bl.example", Type: TypeA, Class: ClassIN,
			TTL: 300, Data: []byte{127, 0, 0, 2},
		}},
	}
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 1 {
		t.Fatalf("answers = %d", len(got.Answers))
	}
	a := got.Answers[0]
	if a.Name != "2.0.0.10.bl.example" || a.TTL != 300 || len(a.Data) != 4 || a.Data[3] != 2 {
		t.Fatalf("answer = %+v", a)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 5),
		// Header claiming 100 questions.
		{0, 1, 0, 0, 0, 100, 0, 0, 0, 0, 0, 0},
		// One question but empty body.
		{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0},
	}
	for i, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Compression pointer loop.
	loop := []byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xc0, 12, 0, 1, 0, 1}
	if _, err := Decode(loop); err == nil {
		t.Error("pointer loop accepted")
	}
}

func TestEncodeNameValidation(t *testing.T) {
	if _, err := encodeName("a..b"); err == nil {
		t.Error("empty label accepted")
	}
	long := make([]byte, 70)
	for i := range long {
		long[i] = 'a'
	}
	if _, err := encodeName(string(long) + ".x"); err == nil {
		t.Error("64+ byte label accepted")
	}
}

// startDNSBL serves a test zone on a loopback UDP socket.
func startDNSBL(t *testing.T, list *blocklist.Trie) (addr string, srv *Server, stop func()) {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err = NewServer("bl.example", list, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ctx, conn) //nolint:errcheck // returns on close
	}()
	return conn.LocalAddr().String(), srv, func() {
		cancel()
		<-done
		conn.Close()
	}
}

func TestEndToEndLookup(t *testing.T) {
	list := blocklist.FromSet(mustSet("10.1.1.1"), 24, "bot-test evidence")
	list.Insert(netaddr.MustParseBlock("20.2.0.0/16"), "spam source")
	addr, srv, stop := startDNSBL(t, list)
	defer stop()

	listed, code, err := Lookup(addr, "bl.example", netaddr.MustParseAddr("10.1.1.200"), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !listed || code != CodeBot {
		t.Fatalf("listed=%v code=%v, want bot code", listed, code)
	}
	listed, code, err = Lookup(addr, "bl.example", netaddr.MustParseAddr("20.2.9.9"), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !listed || code != CodeSpam {
		t.Fatalf("listed=%v code=%v, want spam code", listed, code)
	}
	listed, _, err = Lookup(addr, "bl.example", netaddr.MustParseAddr("99.9.9.9"), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if listed {
		t.Fatal("unlisted address reported listed")
	}
	st := srv.Snapshot()
	if st.Queries != 3 || st.Hits != 2 {
		t.Fatalf("stats = %d queries, %d hits", st.Queries, st.Hits)
	}
}

func TestServerLiveReload(t *testing.T) {
	list := blocklist.FromSet(mustSet("10.1.1.1"), 24, "bot")
	addr, srv, stop := startDNSBL(t, list)
	defer stop()
	probe := netaddr.MustParseAddr("50.5.5.5")
	if listed, _, _ := Lookup(addr, "bl.example", probe, 2*time.Second); listed {
		t.Fatal("probe listed before reload")
	}
	srv.SetList(blocklist.FromSet(mustSet("50.5.5.5"), 24, "scan"))
	listed, code, err := Lookup(addr, "bl.example", probe, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !listed || code != CodeScan {
		t.Fatalf("after reload: listed=%v code=%v", listed, code)
	}
}

func TestServerIgnoresGarbagePackets(t *testing.T) {
	list := blocklist.FromSet(mustSet("10.1.1.1"), 24, "bot")
	addr, _, stop := startDNSBL(t, list)
	defer stop()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// The server drops garbage; a real query afterwards still works.
	listed, _, err := Lookup(addr, "bl.example", netaddr.MustParseAddr("10.1.1.1"), 2*time.Second)
	if err != nil || !listed {
		t.Fatalf("server wedged after garbage: %v %v", listed, err)
	}
}

func TestNewServerValidation(t *testing.T) {
	list := &blocklist.Trie{}
	if _, err := NewServer("", list, time.Minute); err == nil {
		t.Error("empty zone accepted")
	}
	if _, err := NewServer("z", nil, time.Minute); err == nil {
		t.Error("nil list accepted")
	}
	if _, err := NewServer("z", list, 0); err == nil {
		t.Error("zero TTL accepted")
	}
}

func mustSet(s string) ipset.Set { return ipset.MustParse(s) }

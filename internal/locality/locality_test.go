package locality

import (
	"strings"
	"testing"
	"time"

	"unclean/internal/ipset"
	"unclean/internal/netaddr"
	"unclean/internal/netflow"
)

var day0 = time.Date(2006, 10, 1, 0, 0, 0, 0, time.UTC)

func flow(src, dst string, day int, payload bool) netflow.Record {
	at := day0.Add(time.Duration(day)*24*time.Hour + 3*time.Hour)
	r := netflow.Record{
		SrcAddr: netaddr.MustParseAddr(src),
		DstAddr: netaddr.MustParseAddr(dst),
		First:   at, Last: at.Add(time.Minute),
		Proto: netflow.ProtoTCP, SrcPort: 2000, DstPort: 80,
	}
	if payload {
		r.Packets, r.Octets = 10, 3000
		r.TCPFlags = netflow.FlagSYN | netflow.FlagACK | netflow.FlagPSH
	} else {
		r.Packets, r.Octets = 2, 96
		r.TCPFlags = netflow.FlagSYN
	}
	return r
}

func TestAnalyzeNewVsReturning(t *testing.T) {
	records := []netflow.Record{
		flow("1.1.1.1", "30.0.0.1", 0, true),
		flow("2.2.2.2", "30.0.0.1", 0, true),
		flow("1.1.1.1", "30.0.0.1", 1, true), // returning
		flow("3.3.3.3", "30.0.0.1", 1, true), // new
		flow("1.1.1.1", "30.0.0.2", 2, true), // returning
		flow("1.1.1.1", "30.0.0.2", 2, true), // dedup within day
	}
	a := Analyze(records, false)
	if len(a.Days) != 3 {
		t.Fatalf("days = %d", len(a.Days))
	}
	if a.Days[0].New != 2 || a.Days[0].Returning != 0 {
		t.Errorf("day0 = %+v", a.Days[0])
	}
	if a.Days[1].New != 1 || a.Days[1].Returning != 1 {
		t.Errorf("day1 = %+v", a.Days[1])
	}
	if a.Days[2].Sources != 1 || a.Days[2].Returning != 1 {
		t.Errorf("day2 = %+v", a.Days[2])
	}
	if a.WorkingSet.Len() != 3 {
		t.Errorf("working set = %v", a.WorkingSet)
	}
	// Returning fraction over days 1-2: (1+1)/(2+1).
	if got := a.ReturningFraction(); got < 0.66 || got > 0.67 {
		t.Errorf("ReturningFraction = %v", got)
	}
}

func TestAnalyzePayloadOnly(t *testing.T) {
	records := []netflow.Record{
		flow("1.1.1.1", "30.0.0.1", 0, true),
		flow("6.6.6.6", "30.0.0.1", 0, false), // scanner: excluded
	}
	a := Analyze(records, true)
	if a.WorkingSet.Len() != 1 {
		t.Fatalf("payload-only working set = %v", a.WorkingSet)
	}
	all := Analyze(records, false)
	if all.WorkingSet.Len() != 2 {
		t.Fatalf("full working set = %v", all.WorkingSet)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil, false)
	if len(a.Days) != 0 || a.WorkingSet.Len() != 0 || a.ReturningFraction() != 0 {
		t.Fatal("empty analysis not empty")
	}
}

func TestAudiences(t *testing.T) {
	records := []netflow.Record{
		flow("1.1.1.1", "30.0.0.1", 0, true),
		flow("2.2.2.2", "30.0.0.1", 0, true),
		flow("3.3.3.3", "30.0.0.1", 0, true),
		flow("1.1.1.1", "30.0.0.2", 0, true),
	}
	b := Audiences(records, false)
	if b.N != 2 || b.Max != 3 || b.Min != 1 {
		t.Fatalf("audiences = %+v", b)
	}
	if empty := Audiences(nil, false); empty.N != 0 {
		t.Fatal("empty audiences not empty")
	}
}

func TestSpanUtilization(t *testing.T) {
	records := []netflow.Record{
		flow("10.1.1.5", "30.0.0.1", 0, true),
		flow("10.1.1.6", "30.0.0.1", 0, false),
		flow("99.9.9.9", "30.0.0.1", 0, true), // outside cover
	}
	cover := ipset.MustParse("10.1.1.1")
	seen, span, frac := SpanUtilization(records, cover, 24)
	if seen != 2 || span != 256 {
		t.Fatalf("seen=%d span=%d", seen, span)
	}
	if frac < 0.0078 || frac > 0.0079 {
		t.Fatalf("frac = %v", frac)
	}
}

func TestRender(t *testing.T) {
	a := Analyze([]netflow.Record{flow("1.1.1.1", "30.0.0.1", 0, true)}, false)
	out := a.Render()
	for _, want := range []string{"date", "working set", "2006-10-01"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

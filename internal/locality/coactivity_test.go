package locality

import (
	"strings"
	"testing"

	"unclean/internal/netaddr"
	"unclean/internal/netflow"
)

func scanProbe(src string, dstIdx, day int) netflow.Record {
	r := flow(src, netaddr.MakeAddr(30, 0, byte(dstIdx>>8), byte(dstIdx)).String(), day, false)
	r.DstPort = 445
	return r
}

func TestBlockActivitySummaries(t *testing.T) {
	var records []netflow.Record
	// A scanner probing 8 hosts with no payload.
	for i := 0; i < 8; i++ {
		records = append(records, scanProbe("10.1.1.5", i, 0))
	}
	// A benign client with two payload sessions.
	records = append(records, flow("10.1.1.9", "30.0.0.1", 0, true))
	records = append(records, flow("10.1.1.9", "30.0.0.2", 1, true))
	// A host in a different /24: excluded.
	records = append(records, flow("10.1.2.1", "30.0.0.1", 0, true))

	block := netaddr.MustParseBlock("10.1.1.0/24")
	summaries := BlockActivity(records, block)
	if len(summaries) != 2 {
		t.Fatalf("summaries = %d, want 2", len(summaries))
	}
	scanner, client := summaries[0], summaries[1]
	if scanner.Addr != netaddr.MustParseAddr("10.1.1.5") {
		t.Fatalf("order wrong: %v", scanner.Addr)
	}
	if scanner.Flows != 8 || scanner.PayloadFlows != 0 || scanner.Dsts != 8 {
		t.Errorf("scanner summary = %+v", scanner)
	}
	if !scanner.Suspicious() {
		t.Error("scanner not flagged suspicious")
	}
	if client.PayloadFlows != 2 || client.Suspicious() {
		t.Errorf("client summary = %+v", client)
	}
	if !client.Last.After(client.First) {
		t.Error("time bounds not widened")
	}
	out := RenderBlockActivity(block, summaries)
	for _, want := range []string{"10.1.1.0/24", "2 active sources", "1 suspicious", "SUSPICIOUS"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestBlockActivityEmpty(t *testing.T) {
	got := BlockActivity(nil, netaddr.MustParseBlock("10.0.0.0/8"))
	if len(got) != 0 {
		t.Fatal("expected no summaries")
	}
	out := RenderBlockActivity(netaddr.MustParseBlock("10.0.0.0/8"), got)
	if !strings.Contains(out, "0 active sources") {
		t.Error("render wrong for empty block")
	}
}

// Package locality measures the source-locality structure of traffic
// crossing the observed network, following McHugh & Gates' observation
// that normal traffic has a limited, stable audience. The paper leans on
// this twice: the control report approximates the active Internet
// because the observed network's audience is broad, and predictive
// blocking is cheap because "less than 2% of the total IP addresses
// available in those /24s communicated with the observed network" (§6.2).
package locality

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"unclean/internal/ipset"
	"unclean/internal/netaddr"
	"unclean/internal/netflow"
	"unclean/internal/stats"
)

// DayStats summarizes one day of source arrivals.
type DayStats struct {
	// Date is the UTC day.
	Date time.Time
	// Sources is the number of distinct sources seen this day.
	Sources int
	// New counts sources never seen on an earlier day of the analysis.
	New int
	// Returning is Sources - New.
	Returning int
}

// Analysis is the locality profile of a traffic log.
type Analysis struct {
	// Days holds per-day arrival statistics in date order.
	Days []DayStats
	// WorkingSet is every source seen over the whole window.
	WorkingSet ipset.Set
	// PayloadOnly records whether only payload-bearing flows counted.
	PayloadOnly bool
}

// Analyze profiles the sources in a flow log, bucketing by the UTC day
// of each flow's start. With payloadOnly set, only payload-bearing flows
// count — the "meaningful activity" view.
func Analyze(records []netflow.Record, payloadOnly bool) *Analysis {
	type dayKey int64
	perDay := make(map[dayKey]map[netaddr.Addr]struct{})
	for i := range records {
		r := &records[i]
		if payloadOnly && !r.PayloadBearing() {
			continue
		}
		k := dayKey(r.First.UTC().Truncate(24 * time.Hour).Unix())
		m := perDay[k]
		if m == nil {
			m = make(map[netaddr.Addr]struct{})
			perDay[k] = m
		}
		m[r.SrcAddr] = struct{}{}
	}
	keys := make([]dayKey, 0, len(perDay))
	for k := range perDay {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	a := &Analysis{PayloadOnly: payloadOnly}
	seen := make(map[netaddr.Addr]struct{})
	working := ipset.NewBuilder(0)
	for _, k := range keys {
		day := DayStats{Date: time.Unix(int64(k), 0).UTC()}
		for src := range perDay[k] {
			day.Sources++
			if _, old := seen[src]; old {
				day.Returning++
			} else {
				day.New++
				seen[src] = struct{}{}
				working.Add(src)
			}
		}
		a.Days = append(a.Days, day)
	}
	a.WorkingSet = working.Build()
	return a
}

// ReturningFraction returns the aggregate fraction of daily source
// sightings that were returning sources (excluding the first day, whose
// sources are definitionally new).
func (a *Analysis) ReturningFraction() float64 {
	var returning, total int
	for i, d := range a.Days {
		if i == 0 {
			continue
		}
		returning += d.Returning
		total += d.Sources
	}
	if total == 0 {
		return 0
	}
	return float64(returning) / float64(total)
}

// Audiences returns the distribution of distinct sources per destination
// — the per-service audience sizes whose boundedness locality predicts.
func Audiences(records []netflow.Record, payloadOnly bool) stats.Boxplot {
	perDst := make(map[netaddr.Addr]map[netaddr.Addr]struct{})
	for i := range records {
		r := &records[i]
		if payloadOnly && !r.PayloadBearing() {
			continue
		}
		m := perDst[r.DstAddr]
		if m == nil {
			m = make(map[netaddr.Addr]struct{})
			perDst[r.DstAddr] = m
		}
		m[r.SrcAddr] = struct{}{}
	}
	if len(perDst) == 0 {
		return stats.Boxplot{}
	}
	sizes := make([]float64, 0, len(perDst))
	for _, m := range perDst {
		sizes = append(sizes, float64(len(m)))
	}
	return stats.Summarize(sizes)
}

// SpanUtilization reports what fraction of the addresses spanned by the
// n-bit blocks of cover actually appear as sources in the log — the §6.2
// "<2%" computation generalized.
func SpanUtilization(records []netflow.Record, cover ipset.Set, n int) (seen int, span uint64, frac float64) {
	sources := ipset.NewBuilder(0)
	for i := range records {
		sources.Add(records[i].SrcAddr)
	}
	inside := sources.Build().WithinBlocks(cover, n)
	span = uint64(cover.BlockCount(n)) << (32 - uint(n))
	seen = inside.Len()
	if span > 0 {
		frac = float64(seen) / float64(span)
	}
	return seen, span, frac
}

// Render prints the analysis as an aligned table plus the aggregate.
func (a *Analysis) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %9s %8s %10s\n", "date", "sources", "new", "returning")
	for _, d := range a.Days {
		fmt.Fprintf(&b, "%-12s %9d %8d %10d\n", d.Date.Format("2006-01-02"), d.Sources, d.New, d.Returning)
	}
	fmt.Fprintf(&b, "working set: %d sources; returning fraction %.3f\n",
		a.WorkingSet.Len(), a.ReturningFraction())
	return b.String()
}

package locality

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"unclean/internal/netaddr"
	"unclean/internal/netflow"
)

// SourceSummary condenses one source's traffic inside a block under
// inspection.
type SourceSummary struct {
	Addr netaddr.Addr
	// Flows and PayloadFlows count records; Octets totals bytes.
	Flows, PayloadFlows int
	Octets              uint64
	// Dsts and DstPorts count distinct destinations/ports — the fan-out
	// signature that separates scanning from sessions.
	Dsts, DstPorts int
	// First and Last bound the source's activity.
	First, Last time.Time
}

// Suspicious applies a coarse triage: many distinct destinations with no
// payload exchanged is the §6.2 unknown-population signature.
func (s SourceSummary) Suspicious() bool {
	return s.PayloadFlows == 0 && s.Dsts >= 5
}

// String renders one summary line.
func (s SourceSummary) String() string {
	flag := ""
	if s.Suspicious() {
		flag = "  SUSPICIOUS"
	}
	return fmt.Sprintf("%-15s flows=%-5d payload=%-5d dsts=%-5d ports=%-4d bytes=%-8d %s..%s%s",
		s.Addr, s.Flows, s.PayloadFlows, s.Dsts, s.DstPorts, s.Octets,
		s.First.UTC().Format("01-02 15:04"), s.Last.UTC().Format("01-02 15:04"), flag)
}

// BlockActivity implements the paper's §7 log-analysis suggestion: "if we
// know that a host from one network is attacking ... it is reasonable to
// examine other traffic from that network to see if there is coordinated
// hostile activity." Given a flow log and a network block, it summarizes
// every source in the block, ordered by address.
func BlockActivity(records []netflow.Record, block netaddr.Block) []SourceSummary {
	type acc struct {
		sum   SourceSummary
		dsts  map[netaddr.Addr]struct{}
		ports map[uint16]struct{}
	}
	bysrc := make(map[netaddr.Addr]*acc)
	for i := range records {
		r := &records[i]
		if !block.Contains(r.SrcAddr) {
			continue
		}
		a := bysrc[r.SrcAddr]
		if a == nil {
			a = &acc{
				sum:   SourceSummary{Addr: r.SrcAddr, First: r.First, Last: r.Last},
				dsts:  make(map[netaddr.Addr]struct{}),
				ports: make(map[uint16]struct{}),
			}
			bysrc[r.SrcAddr] = a
		}
		a.sum.Flows++
		a.sum.Octets += uint64(r.Octets)
		if r.PayloadBearing() {
			a.sum.PayloadFlows++
		}
		a.dsts[r.DstAddr] = struct{}{}
		a.ports[r.DstPort] = struct{}{}
		if r.First.Before(a.sum.First) {
			a.sum.First = r.First
		}
		if r.Last.After(a.sum.Last) {
			a.sum.Last = r.Last
		}
	}
	out := make([]SourceSummary, 0, len(bysrc))
	for _, a := range bysrc {
		a.sum.Dsts = len(a.dsts)
		a.sum.DstPorts = len(a.ports)
		out = append(out, a.sum)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// RenderBlockActivity formats a coordinated-activity report for a block.
func RenderBlockActivity(block netaddr.Block, summaries []SourceSummary) string {
	var b strings.Builder
	suspicious := 0
	for _, s := range summaries {
		if s.Suspicious() {
			suspicious++
		}
	}
	fmt.Fprintf(&b, "traffic from %s: %d active sources, %d suspicious\n",
		block, len(summaries), suspicious)
	for _, s := range summaries {
		fmt.Fprintf(&b, "  %s\n", s)
	}
	return b.String()
}

package ddosdetect

import (
	"testing"
	"time"

	"unclean/internal/netaddr"
	"unclean/internal/netflow"
)

var t0 = time.Date(2006, 10, 3, 14, 0, 0, 0, time.UTC)

func synFlood(srcIdx int, dst string, at time.Time) netflow.Record {
	return netflow.Record{
		SrcAddr: netaddr.MakeAddr(60, byte(srcIdx>>8), byte(srcIdx), 7),
		DstAddr: netaddr.MustParseAddr(dst),
		Packets: 3, Octets: 132,
		First: at, Last: at.Add(5 * time.Second),
		SrcPort: 2000, DstPort: 80,
		TCPFlags: netflow.FlagSYN, Proto: netflow.ProtoTCP,
	}
}

func session(srcIdx int, dst string, at time.Time) netflow.Record {
	r := synFlood(srcIdx, dst, at)
	r.TCPFlags = netflow.FlagSYN | netflow.FlagACK | netflow.FlagPSH | netflow.FlagFIN
	r.Packets, r.Octets = 20, 20*40+5000
	return r
}

func flood(nSources, flowsPer int, dst string) []netflow.Record {
	var out []netflow.Record
	for s := 0; s < nSources; s++ {
		for f := 0; f < flowsPer; f++ {
			out = append(out, synFlood(s, dst, t0.Add(time.Duration(s*flowsPer+f)*time.Second)))
		}
	}
	return out
}

func TestDetectFlood(t *testing.T) {
	records := flood(60, 5, "30.0.4.1") // 60 sources, 300 flows, all failed
	attacks, err := Detect(records, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(attacks) != 1 {
		t.Fatalf("attacks = %d, want 1", len(attacks))
	}
	a := attacks[0]
	if a.Target != netaddr.MustParseAddr("30.0.4.1") || a.Sources.Len() != 60 || a.Flows != 300 {
		t.Fatalf("attack = %+v", a)
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}

func TestDetectIgnoresFlashCrowd(t *testing.T) {
	// Many sources, high volume, but payload-bearing sessions: a flash
	// crowd, not an attack.
	var records []netflow.Record
	for s := 0; s < 80; s++ {
		for f := 0; f < 4; f++ {
			records = append(records, session(s, "30.0.4.1", t0.Add(time.Duration(s)*time.Second)))
		}
	}
	attacks, err := Detect(records, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(attacks) != 0 {
		t.Fatalf("flash crowd flagged: %v", attacks)
	}
}

func TestDetectIgnoresSmallFloods(t *testing.T) {
	// Too few sources.
	attacks, err := Detect(flood(10, 30, "30.0.4.1"), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(attacks) != 0 {
		t.Fatalf("small-source flood flagged: %v", attacks)
	}
	// Too few flows.
	attacks, err = Detect(flood(50, 2, "30.0.4.1"), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(attacks) != 0 {
		t.Fatalf("low-volume flood flagged: %v", attacks)
	}
}

func TestDetectSeparatesTargetsAndWindows(t *testing.T) {
	records := flood(60, 5, "30.0.4.1")
	records = append(records, flood(60, 5, "30.0.4.2")...)
	// Same target attacked again three hours later.
	for _, r := range flood(60, 5, "30.0.4.1") {
		r.First = r.First.Add(3 * time.Hour)
		r.Last = r.Last.Add(3 * time.Hour)
		records = append(records, r)
	}
	attacks, err := Detect(records, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(attacks) != 3 {
		t.Fatalf("attacks = %d, want 3", len(attacks))
	}
	for i := 1; i < len(attacks); i++ {
		if attacks[i].Start.Before(attacks[i-1].Start) {
			t.Fatal("attacks not ordered by window")
		}
	}
}

func TestParticipants(t *testing.T) {
	records := flood(60, 5, "30.0.4.1")
	records = append(records, flood(60, 5, "30.0.4.2")...) // same 60 sources
	attacks, err := Detect(records, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := Participants(attacks)
	if p.Len() != 60 {
		t.Fatalf("participants = %d, want 60 (dedup across attacks)", p.Len())
	}
	if Participants(nil).Len() != 0 {
		t.Fatal("empty participants wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Window: 0, MinSources: 40, MinFlows: 200, MinFailureRatio: 0.8},
		{Window: time.Hour, MinSources: 1, MinFlows: 200, MinFailureRatio: 0.8},
		{Window: time.Hour, MinSources: 40, MinFlows: 0, MinFailureRatio: 0.8},
		{Window: time.Hour, MinSources: 40, MinFlows: 200, MinFailureRatio: 1.5},
	}
	for i, cfg := range bad {
		if _, err := Detect(nil, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

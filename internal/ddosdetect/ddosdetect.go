// Package ddosdetect identifies volumetric DDoS events in flow logs and
// extracts their participant sets. DDoS is the botnet use the paper's
// introduction opens with (after Mirkovic et al.'s acquisition/use
// model); participant sets feed the same uncleanliness machinery as the
// other indicators — attackers' bots cluster spatially like everyone
// else's.
package ddosdetect

import (
	"fmt"
	"sort"
	"time"

	"unclean/internal/ipset"
	"unclean/internal/netaddr"
	"unclean/internal/netflow"
)

// Config parameterizes the detector: a destination is under attack in a
// window when enough distinct sources send enough failed flows at it.
type Config struct {
	// Window is the bucketing interval.
	Window time.Duration
	// MinSources is the distinct-source floor per window.
	MinSources int
	// MinFlows is the total flow floor per window.
	MinFlows int
	// MinFailureRatio is the floor on the fraction of flows without an
	// established, payload-bearing exchange (SYN floods fail en masse;
	// flash crowds succeed).
	MinFailureRatio float64
}

// DefaultConfig returns hour windows, 40 sources, 200 flows, 0.8 failure.
func DefaultConfig() Config {
	return Config{Window: time.Hour, MinSources: 40, MinFlows: 200, MinFailureRatio: 0.8}
}

func (c Config) validate() error {
	if c.Window <= 0 {
		return fmt.Errorf("ddosdetect: Window must be positive")
	}
	if c.MinSources < 2 || c.MinFlows < 1 {
		return fmt.Errorf("ddosdetect: MinSources/MinFlows too small")
	}
	if c.MinFailureRatio < 0 || c.MinFailureRatio > 1 {
		return fmt.Errorf("ddosdetect: MinFailureRatio out of [0,1]")
	}
	return nil
}

// Attack is one detected event: a victim, a window, and the sources that
// flooded it.
type Attack struct {
	// Target is the victim address.
	Target netaddr.Addr
	// Start is the beginning of the detection window.
	Start time.Time
	// Flows counts the records aimed at the victim in the window.
	Flows int
	// Sources is the participant set.
	Sources ipset.Set
}

// String summarizes the attack.
func (a Attack) String() string {
	return fmt.Sprintf("ddos target=%s window=%s flows=%d sources=%d",
		a.Target, a.Start.UTC().Format("2006-01-02T15Z"), a.Flows, a.Sources.Len())
}

// Detect scans a flow log for volumetric events. Attacks are returned
// ordered by window start, then target.
func Detect(records []netflow.Record, cfg Config) ([]Attack, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	type key struct {
		dst    netaddr.Addr
		window int64
	}
	type bucket struct {
		flows    int
		failures int
		sources  map[netaddr.Addr]struct{}
	}
	buckets := make(map[key]*bucket)
	for i := range records {
		r := &records[i]
		k := key{dst: r.DstAddr, window: r.First.UnixNano() / int64(cfg.Window)}
		b := buckets[k]
		if b == nil {
			b = &bucket{sources: make(map[netaddr.Addr]struct{})}
			buckets[k] = b
		}
		b.flows++
		if !r.PayloadBearing() {
			b.failures++
		}
		b.sources[r.SrcAddr] = struct{}{}
	}
	var out []Attack
	for k, b := range buckets {
		if len(b.sources) < cfg.MinSources || b.flows < cfg.MinFlows {
			continue
		}
		if float64(b.failures) < cfg.MinFailureRatio*float64(b.flows) {
			continue
		}
		srcs := ipset.NewBuilder(len(b.sources))
		for s := range b.sources {
			srcs.Add(s)
		}
		out = append(out, Attack{
			Target:  k.dst,
			Start:   time.Unix(0, k.window*int64(cfg.Window)).UTC(),
			Flows:   b.flows,
			Sources: srcs.Build(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].Target < out[j].Target
	})
	return out, nil
}

// Participants unions the source sets of all attacks — a report-shaped
// set for the uncleanliness analyses.
func Participants(attacks []Attack) ipset.Set {
	out := ipset.Set{}
	for _, a := range attacks {
		out = out.Union(a.Sources)
	}
	return out
}

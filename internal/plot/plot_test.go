package plot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func sampleChart() *Chart {
	return &Chart{
		Title: "Density vs control", XLabel: "prefix length", YLabel: "blocks",
		XTickFormat: "/%.0f",
		Series: []Series{
			{Label: "bot", X: []float64{16, 20, 24}, Y: []float64{100, 400, 700}},
			{Label: "control", X: []float64{16, 20, 24}, Y: []float64{200, 600, 800}, Dashed: true},
		},
		Bands: []Band{
			{Label: "control range", X: []float64{16, 20, 24}, Lo: []float64{180, 560, 760}, Hi: []float64{220, 640, 840}},
		},
	}
}

func TestSVGWellFormed(t *testing.T) {
	out, err := sampleChart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	// Must be valid XML.
	dec := xml.NewDecoder(strings.NewReader(string(out)))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
	s := string(out)
	for _, want := range []string{
		"<svg", "Density vs control", "prefix length", "blocks",
		"bot", "control range", "stroke-dasharray", "/16", "/24",
		categorical[0], bandFill,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestSVGDirectLabelsPresent(t *testing.T) {
	// The relief rule: every series carries a visible direct label.
	out, err := sampleChart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, label := range []string{">bot</text>", ">control</text>"} {
		if !strings.Contains(s, label) {
			t.Errorf("missing direct label %q", label)
		}
	}
	// Labels wear ink, not series color.
	if strings.Contains(s, `fill="`+categorical[0]+`" font-size="11" font-weight="600"`) {
		t.Error("direct label colored with series hue")
	}
}

func TestSVGTitleEscaped(t *testing.T) {
	c := &Chart{
		Title:  `R_bot <&> "density"`,
		Series: []Series{{Label: "a", X: []float64{0, 1}, Y: []float64{0, 1}}},
	}
	out, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), "<&>") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(string(out), "&lt;&amp;&gt;") {
		t.Fatal("escaped title missing")
	}
}

func TestSVGErrors(t *testing.T) {
	if _, err := (&Chart{Title: "empty"}).SVG(); err == nil {
		t.Error("empty chart accepted")
	}
	ragged := &Chart{Series: []Series{{Label: "x", X: []float64{1, 2}, Y: []float64{1}}}}
	if _, err := ragged.SVG(); err == nil {
		t.Error("ragged series accepted")
	}
	nan := &Chart{Series: []Series{{Label: "x", X: []float64{1}, Y: []float64{math.NaN()}}}}
	if _, err := nan.SVG(); err == nil {
		t.Error("NaN accepted")
	}
	var many []Series
	for i := 0; i < 10; i++ {
		many = append(many, Series{Label: "s", X: []float64{1}, Y: []float64{1}})
	}
	if _, err := (&Chart{Series: many}).SVG(); err == nil {
		t.Error("palette overflow accepted (hues must never be cycled)")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 100, 5)
	if len(ticks) < 3 || len(ticks) > 8 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatal("ticks not increasing")
		}
	}
	if ticks[0] < 0 || ticks[len(ticks)-1] > 100.001 {
		t.Fatalf("ticks out of range: %v", ticks)
	}
	if got := niceTicks(5, 5, 4); len(got) != 1 {
		t.Fatalf("degenerate ticks = %v", got)
	}
}

func TestYAxisAnchoredAtZero(t *testing.T) {
	// Magnitude charts must not truncate the axis: with data 700..800 the
	// zero gridline must still appear.
	c := &Chart{Series: []Series{{Label: "x", X: []float64{0, 1}, Y: []float64{700, 800}}}}
	out, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `>0</text>`) {
		t.Fatal("y axis does not include zero")
	}
}

// Package plot renders the reproduction's figures as self-contained SVG
// files. It follows the data-viz method's invariants: one y-axis per
// chart, thin 2px line marks, a recessive grid, categorical colors
// assigned in a fixed validated order (never cycled), direct series
// labels (the relief rule for the low-contrast slots), and text in ink
// tokens rather than series colors.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// The validated default palette (light mode, surface #fcfcfb). Slots are
// assigned to series in this fixed order.
var (
	surface       = "#fcfcfb"
	inkPrimary    = "#0b0b0b"
	inkSecondary  = "#52514e"
	gridColor     = "#e4e3df"
	categorical   = []string{"#2a78d6", "#1baf7a", "#eda100", "#008300", "#4a3aa7", "#e34948"}
	bandFill      = "#cde2fb" // sequential blue step 100: the control envelope
	bandEdgeColor = "#86b6ef" // step 250
)

// Series is one line on a chart.
type Series struct {
	// Label names the series; it is drawn as a direct label at the
	// line's end.
	Label string
	X, Y  []float64
	// Dashed draws the line dashed (secondary comparisons).
	Dashed bool
}

// Band is a shaded min..max envelope (the control-distribution range).
type Band struct {
	Label     string
	X, Lo, Hi []float64
}

// Chart is a single-axis line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Bands  []Band
	// W and H default to 720x420 when zero.
	W, H int
	// XTickFormat formats x tick values ("" = %g). Use e.g. "/%.0f" for
	// prefix lengths.
	XTickFormat string
}

const (
	marginL = 64
	marginR = 120 // room for direct labels
	marginT = 44
	marginB = 48
)

// SVG renders the chart.
func (c *Chart) SVG() ([]byte, error) {
	if len(c.Series) == 0 && len(c.Bands) == 0 {
		return nil, fmt.Errorf("plot: chart %q has no data", c.Title)
	}
	if len(c.Series) > len(categorical) {
		return nil, fmt.Errorf("plot: %d series exceeds the fixed palette; fold into fewer series", len(c.Series))
	}
	w, h := c.W, c.H
	if w == 0 {
		w = 720
	}
	if h == 0 {
		h = 420
	}
	xmin, xmax, ymin, ymax, err := c.bounds()
	if err != nil {
		return nil, err
	}
	// Always anchor magnitude axes at zero.
	if ymin > 0 {
		ymin = 0
	}
	plotW := float64(w - marginL - marginR)
	plotH := float64(h - marginT - marginB)
	sx := func(x float64) float64 {
		if xmax == xmin {
			return marginL + plotW/2
		}
		return marginL + (x-xmin)/(xmax-xmin)*plotW
	}
	sy := func(y float64) float64 {
		if ymax == ymin {
			return marginT + plotH/2
		}
		return marginT + plotH - (y-ymin)/(ymax-ymin)*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, sans-serif">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", w, h, surface)
	fmt.Fprintf(&b, `<text x="%d" y="24" fill="%s" font-size="15" font-weight="600">%s</text>`+"\n",
		marginL, inkPrimary, escape(c.Title))

	// Recessive grid + y ticks.
	for _, t := range niceTicks(ymin, ymax, 5) {
		y := sy(t)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
			marginL, y, w-marginR, y, gridColor)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" fill="%s" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-8, y+4, inkSecondary, formatTick(t, ""))
	}
	// X ticks.
	for _, t := range niceTicks(xmin, xmax, 7) {
		x := sx(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s" stroke-width="1"/>`+"\n",
			x, h-marginB, x, h-marginB+4, inkSecondary)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" fill="%s" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, h-marginB+18, inkSecondary, formatTick(t, c.XTickFormat))
	}
	// Axis labels.
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" fill="%s" font-size="12" text-anchor="middle">%s</text>`+"\n",
			marginL+plotW/2, h-10, inkSecondary, escape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%.1f" fill="%s" font-size="12" text-anchor="middle" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
			marginT+plotH/2, inkSecondary, marginT+plotH/2, escape(c.YLabel))
	}

	// Bands under the lines.
	for _, band := range c.Bands {
		if len(band.X) == 0 {
			continue
		}
		var path strings.Builder
		for i, x := range band.X {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, sx(x), sy(band.Hi[i]))
		}
		for i := len(band.X) - 1; i >= 0; i-- {
			fmt.Fprintf(&path, "L%.1f %.1f ", sx(band.X[i]), sy(band.Lo[i]))
		}
		fmt.Fprintf(&b, `<path d="%sZ" fill="%s" stroke="%s" stroke-width="1" fill-opacity="0.85"/>`+"\n",
			path.String(), bandFill, bandEdgeColor)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" fill="%s" font-size="11">%s</text>`+"\n",
			sx(band.X[len(band.X)-1])+6, sy(band.Lo[len(band.X)-1])+4, inkSecondary, escape(band.Label))
	}

	// Lines with direct end labels (identity never rides on color alone).
	for si, s := range c.Series {
		if len(s.X) == 0 {
			continue
		}
		color := categorical[si]
		var path strings.Builder
		for i, x := range s.X {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, sx(x), sy(s.Y[i]))
		}
		dash := ""
		if s.Dashed {
			dash = ` stroke-dasharray="6 4"`
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2"%s stroke-linejoin="round"/>`+"\n",
			path.String(), color, dash)
		last := len(s.X) - 1
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", sx(s.X[last]), sy(s.Y[last]), color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" fill="%s" font-size="11" font-weight="600">%s</text>`+"\n",
			sx(s.X[last])+8, sy(s.Y[last])+4, inkPrimary, escape(s.Label))
	}
	b.WriteString("</svg>\n")
	return []byte(b.String()), nil
}

func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64, err error) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	consider := func(xs, ys []float64) error {
		if len(xs) != len(ys) {
			return fmt.Errorf("plot: ragged series in %q", c.Title)
		}
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) || math.IsInf(xs[i], 0) || math.IsInf(ys[i], 0) {
				return fmt.Errorf("plot: non-finite point in %q", c.Title)
			}
			xmin, xmax = math.Min(xmin, xs[i]), math.Max(xmax, xs[i])
			ymin, ymax = math.Min(ymin, ys[i]), math.Max(ymax, ys[i])
		}
		return nil
	}
	for _, s := range c.Series {
		if err := consider(s.X, s.Y); err != nil {
			return 0, 0, 0, 0, err
		}
	}
	for _, band := range c.Bands {
		if err := consider(band.X, band.Lo); err != nil {
			return 0, 0, 0, 0, err
		}
		if err := consider(band.X, band.Hi); err != nil {
			return 0, 0, 0, 0, err
		}
	}
	if math.IsInf(xmin, 1) {
		return 0, 0, 0, 0, fmt.Errorf("plot: chart %q has only empty series", c.Title)
	}
	return xmin, xmax, ymin, ymax, nil
}

// niceTicks returns ~n round tick values covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if hi <= lo {
		return []float64{lo}
	}
	span := hi - lo
	step := math.Pow(10, math.Floor(math.Log10(span/float64(n))))
	for _, m := range []float64{1, 2, 5, 10} {
		if span/(step*m) <= float64(n) {
			step *= m
			break
		}
	}
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi+step/1e6; t += step {
		out = append(out, t)
	}
	return out
}

func formatTick(v float64, format string) string {
	if format != "" {
		return fmt.Sprintf(format, v)
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e7 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%g", v)
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

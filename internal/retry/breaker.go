package retry

import (
	"errors"
	"sync"
	"time"

	"unclean/internal/obs"
	"unclean/internal/obs/flight"
)

// Breaker telemetry: trips and closes are rare, load-bearing events, so
// they are both counted (obs default registry) and logged structurally.
var (
	mTrips = obs.Default().Counter("unclean_breaker_trips_total",
		"Circuit-breaker openings (including re-opens after a failed half-open probe).")
	mCloses = obs.Default().Counter("unclean_breaker_closes_total",
		"Circuit-breaker closings after a successful probe.")
	breakerLog = obs.Logger("breaker")
)

// ErrOpen is returned by Breaker.Do while the circuit is open: the
// guarded operation has failed enough consecutive times that further
// tries are refused until the cooldown elapses.
var ErrOpen = errors.New("retry: circuit open")

// Breaker is a small consecutive-failure circuit breaker. After
// Threshold consecutive failures it opens for Cooldown; the first call
// after the cooldown is a half-open probe — success closes the circuit,
// failure re-opens it for another cooldown.
//
// The zero value is not usable; construct with NewBreaker. All methods
// are safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	failures  int
	openUntil time.Time
	now       func() time.Time
}

// NewBreaker builds a breaker that opens after threshold consecutive
// failures and stays open for cooldown. threshold below 1 is treated
// as 1.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// SetClock injects a clock, so tests can march time deterministically.
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	b.now = now
	b.mu.Unlock()
}

// Allow reports whether a call may proceed. While open it returns false
// until the cooldown has elapsed; then it lets one half-open probe
// through.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() || b.now().After(b.openUntil) {
		return true
	}
	return false
}

// Record feeds an operation outcome to the breaker: nil resets the
// consecutive-failure count and closes the circuit; an error counts
// toward (or re-arms) opening it. State changes are counted and logged
// as structured events — a breaker transition is exactly the moment an
// operator wants on a timeline.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	wasOpen := !b.openUntil.IsZero()
	if err == nil {
		b.failures = 0
		b.openUntil = time.Time{}
		if wasOpen {
			mCloses.Inc()
			breakerLog.Info("circuit closed")
			flight.Default().Record(flight.Event{
				Kind:    flight.KindBreaker,
				Flags:   flight.FlagRecovered,
				Verdict: "closed",
			})
		}
		return
	}
	b.failures++
	if b.failures >= b.threshold {
		b.openUntil = b.now().Add(b.cooldown)
		// Count the closed→open edge and every re-open after a failed
		// half-open probe, but not repeated failures while already open.
		if !wasOpen || b.failures > b.threshold {
			mTrips.Inc()
			breakerLog.Warn("circuit opened",
				"failures", b.failures, "cooldown", b.cooldown)
			flight.Default().Record(flight.Event{
				Kind:    flight.KindBreaker,
				Flags:   flight.FlagErr,
				Verdict: "open",
				Detail:  err.Error(),
				Value:   int64(b.failures),
			})
		}
	}
}

// Open reports whether the circuit is currently refusing calls.
func (b *Breaker) Open() bool { return !b.Allow() }

// Failures returns the current consecutive-failure count — the distance
// to (or past) the trip threshold. Status surfaces render it so an
// operator can see a feed that is failing but has not tripped yet.
func (b *Breaker) Failures() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.failures
}

// Do guards op with the breaker: if the circuit is open it returns
// ErrOpen without calling op; otherwise it runs op and records the
// outcome.
func (b *Breaker) Do(op func() error) error {
	if !b.Allow() {
		return ErrOpen
	}
	err := op()
	b.Record(err)
	return err
}

// Package retry provides context-aware retry with capped exponential
// backoff plus jitter, and a small circuit breaker. Together they are the
// degradation policy for the operational spine: a DNSBL lookup whose UDP
// packet was lost retries with backoff; a report feed that fails reload
// repeatedly trips the breaker so the daemon keeps serving its last-good
// blocklist instead of hammering (or dying on) a broken source.
//
// Jitter draws from a stats.RNG so chaos runs are reproducible: the same
// seed yields the same retry schedule.
package retry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"unclean/internal/obs"
	"unclean/internal/stats"
)

// Process-wide retry telemetry, shared with the /metrics exposition
// through the obs default registry.
var (
	mAttempts = obs.Default().Counter("unclean_retry_attempts_total",
		"Operation attempts made under a retry policy (first tries included).")
	mRetries = obs.Default().Counter("unclean_retry_retries_total",
		"Attempts beyond the first (i.e. actual retries).")
	mGiveups = obs.Default().Counter("unclean_retry_giveups_total",
		"Operations abandoned after exhausting their attempt budget.")
)

// Policy parameterizes Do. The zero value is usable: it means "one
// attempt, no waiting" (i.e. no retries).
type Policy struct {
	// MaxAttempts is the total number of attempts (first try included).
	// Values below 1 are treated as 1.
	MaxAttempts int
	// BaseDelay is the wait after the first failure; each subsequent wait
	// doubles, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. Zero means "no cap".
	MaxDelay time.Duration
	// Jitter is the fraction of each delay that is randomized: the actual
	// wait is delay * (1 - Jitter/2 + Jitter*u) for uniform u in [0,1).
	// Zero disables jitter; 1 spreads waits over [delay/2, delay*3/2).
	Jitter float64
	// RNG supplies the jitter stream. Nil falls back to a process-wide
	// seeded generator (still deterministic within one process run).
	RNG *stats.RNG
	// Sleep overrides the waiting primitive (tests inject a fake). Nil
	// uses a context-aware real sleep.
	Sleep func(ctx context.Context, d time.Duration) error
}

// DefaultPolicy is a sensible operational default: 4 attempts, 50ms
// base, one second cap, full jitter.
func DefaultPolicy() Policy {
	return Policy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second, Jitter: 1}
}

// fallbackRNG backs policies without an explicit generator.
var (
	fallbackMu  sync.Mutex
	fallbackRNG = stats.NewRNG(0x9e3779b97f4a7c15)
)

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Do stops immediately and returns it unwrapped.
// Use it for failures more attempts cannot fix (parse errors, validation).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err carries the Permanent marker.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// Do runs op until it succeeds, returns a permanent error, exhausts
// p.MaxAttempts, or ctx is done. The last error is returned, annotated
// with the attempt count when retries were exhausted.
func Do(ctx context.Context, p Policy, op func() error) error {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	delay := p.BaseDelay
	var err error
	for attempt := 1; ; attempt++ {
		if err = ctx.Err(); err != nil {
			return err
		}
		mAttempts.Inc()
		if attempt > 1 {
			mRetries.Inc()
		}
		err = op()
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if attempt >= attempts {
			mGiveups.Inc()
			if attempts > 1 {
				return fmt.Errorf("retry: %d attempts: %w", attempts, err)
			}
			return err
		}
		if delay > 0 {
			if serr := sleep(ctx, jittered(&p, delay)); serr != nil {
				return serr
			}
			delay *= 2
			if p.MaxDelay > 0 && delay > p.MaxDelay {
				delay = p.MaxDelay
			}
		}
	}
}

// jittered applies the policy's jitter fraction to d.
func jittered(p *Policy, d time.Duration) time.Duration {
	if p.Jitter <= 0 || d <= 0 {
		return d
	}
	var u float64
	if p.RNG != nil {
		u = p.RNG.Float64()
	} else {
		fallbackMu.Lock()
		u = fallbackRNG.Float64()
		fallbackMu.Unlock()
	}
	f := 1 - p.Jitter/2 + p.Jitter*u
	if f <= 0 {
		return 0
	}
	return time.Duration(float64(d) * f)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"unclean/internal/stats"
)

// fakeSleep records requested waits and never actually sleeps.
func fakeSleep(log *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*log = append(*log, d)
		return ctx.Err()
	}
}

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	var waits []time.Duration
	p := Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond,
		Sleep: fakeSleep(&waits)}
	calls := 0
	err := Do(context.Background(), p, func() error {
		calls++
		if calls < 4 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
	// No jitter: the schedule is the pure capped exponential.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(waits) != len(want) {
		t.Fatalf("waits = %v, want %v", waits, want)
	}
	for i := range want {
		if waits[i] != want[i] {
			t.Fatalf("waits = %v, want %v", waits, want)
		}
	}
}

func TestDoCapsDelay(t *testing.T) {
	var waits []time.Duration
	p := Policy{MaxAttempts: 6, BaseDelay: 10 * time.Millisecond, MaxDelay: 25 * time.Millisecond,
		Sleep: fakeSleep(&waits)}
	boom := errors.New("always")
	err := Do(context.Background(), p, func() error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	for _, d := range waits[2:] {
		if d != 25*time.Millisecond {
			t.Fatalf("delay %v exceeds cap", d)
		}
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	var waits []time.Duration
	p := Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Sleep: fakeSleep(&waits)}
	calls := 0
	err := Do(context.Background(), p, func() error { calls++; return errors.New("nope") })
	if err == nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want error after 3 calls", err, calls)
	}
}

func TestDoPermanentStopsImmediately(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, Sleep: fakeSleep(new([]time.Duration))}
	calls := 0
	base := errors.New("parse error")
	err := Do(context.Background(), p, func() error { calls++; return Permanent(base) })
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, base) || IsPermanent(err) {
		t.Fatalf("err = %v, want unwrapped base error", err)
	}
	if !IsPermanent(Permanent(base)) {
		t.Fatal("IsPermanent(Permanent(err)) = false")
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
	if !errors.Is(fmt.Errorf("wrapped: %w", Permanent(base)), base) {
		t.Fatal("Permanent breaks errors.Is chain")
	}
}

func TestDoHonorsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Policy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	calls := 0
	err := Do(ctx, p, func() error { calls++; return errors.New("x") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("calls = %d, want 0 on pre-canceled context", calls)
	}
}

func TestDoCancelDuringSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 5, BaseDelay: time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel()
			return ctx.Err()
		}}
	err := Do(ctx, p, func() error { return errors.New("x") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestJitterDeterministicWithSeed(t *testing.T) {
	sched := func(seed uint64) []time.Duration {
		var waits []time.Duration
		p := Policy{MaxAttempts: 6, BaseDelay: 100 * time.Millisecond, Jitter: 1,
			RNG: stats.NewRNG(seed), Sleep: fakeSleep(&waits)}
		_ = Do(context.Background(), p, func() error { return errors.New("x") })
		return waits
	}
	a, b := sched(42), sched(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	for _, d := range a {
		if d < 0 {
			t.Fatalf("negative jittered delay %v", d)
		}
	}
	c := sched(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestZeroPolicyMeansOneAttempt(t *testing.T) {
	calls := 0
	boom := errors.New("x")
	err := Do(context.Background(), Policy{}, func() error { calls++; return boom })
	if calls != 1 || !errors.Is(err, boom) {
		t.Fatalf("calls=%d err=%v", calls, err)
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	clock := time.Unix(1000, 0)
	b := NewBreaker(3, time.Minute)
	b.SetClock(func() time.Time { return clock })

	boom := errors.New("down")
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("breaker open after %d failures", i)
		}
		b.Record(boom)
	}
	if b.Allow() {
		t.Fatal("breaker still closed after threshold failures")
	}
	if err := b.Do(func() error { t.Fatal("op ran while open"); return nil }); !errors.Is(err, ErrOpen) {
		t.Fatalf("Do while open = %v, want ErrOpen", err)
	}

	// Cooldown elapses: one half-open probe is allowed; failure re-opens.
	clock = clock.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("no half-open probe after cooldown")
	}
	b.Record(boom)
	if b.Allow() {
		t.Fatal("breaker closed again after failed probe")
	}

	// Probe success closes the circuit fully.
	clock = clock.Add(2 * time.Minute)
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if !b.Allow() || b.Open() {
		t.Fatal("breaker not closed after successful probe")
	}
}

func TestBreakerFailuresCount(t *testing.T) {
	clock := time.Unix(1000, 0)
	b := NewBreaker(3, time.Minute)
	b.SetClock(func() time.Time { return clock })
	boom := errors.New("x")
	if b.Failures() != 0 {
		t.Fatalf("fresh breaker Failures = %d", b.Failures())
	}
	b.Record(boom)
	b.Record(boom)
	if b.Failures() != 2 {
		t.Fatalf("Failures after 2 errors = %d", b.Failures())
	}
	// A success wipes the consecutive count.
	b.Record(nil)
	if b.Failures() != 0 {
		t.Fatalf("Failures after success = %d", b.Failures())
	}
	// The count keeps climbing past the threshold while the circuit is
	// open — it reports consecutive failures, not a saturating trip flag.
	for i := 0; i < 3; i++ {
		b.Record(boom)
	}
	if !b.Open() || b.Failures() != 3 {
		t.Fatalf("open=%v Failures=%d, want open with 3", b.Open(), b.Failures())
	}
	clock = clock.Add(2 * time.Minute)
	b.Record(boom) // failed half-open probe
	if b.Failures() != 4 {
		t.Fatalf("Failures after failed probe = %d, want 4", b.Failures())
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b := NewBreaker(3, time.Minute)
	boom := errors.New("x")
	b.Record(boom)
	b.Record(boom)
	b.Record(nil)
	b.Record(boom)
	b.Record(boom)
	if !b.Allow() {
		t.Fatal("non-consecutive failures opened breaker")
	}
}

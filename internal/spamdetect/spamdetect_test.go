package spamdetect

import (
	"testing"
	"time"

	"unclean/internal/netaddr"
	"unclean/internal/netflow"
)

var t0 = time.Date(2006, 10, 2, 9, 0, 0, 0, time.UTC)

func smtpFlow(src string, dstIdx int, payload uint32, delivered bool, at time.Time) netflow.Record {
	r := netflow.Record{
		SrcAddr: netaddr.MustParseAddr(src),
		DstAddr: netaddr.MakeAddr(30, 1, byte(dstIdx), 25),
		First:   at, Last: at.Add(5 * time.Second),
		SrcPort: 3456, DstPort: SMTPPort, Proto: netflow.ProtoTCP,
	}
	if delivered {
		r.TCPFlags = netflow.FlagSYN | netflow.FlagACK | netflow.FlagPSH | netflow.FlagFIN
		r.Packets = 10
		r.Octets = 10*40 + payload
	} else {
		r.TCPFlags = netflow.FlagSYN | netflow.FlagRST
		r.Packets = 3
		r.Octets = 120
	}
	return r
}

func TestDetectFlagsSpammer(t *testing.T) {
	var records []netflow.Record
	// A bot delivering small template mail to 20 servers, half rejected.
	for i := 0; i < 20; i++ {
		records = append(records, smtpFlow("6.6.6.6", i, 900, i%2 == 0, t0.Add(time.Duration(i)*time.Minute)))
	}
	got, err := Detect(records, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Contains(netaddr.MustParseAddr("6.6.6.6")) {
		t.Fatalf("spammers = %v", got)
	}
}

func TestDetectIgnoresLegitimateRelay(t *testing.T) {
	var records []netflow.Record
	// A real relay: many servers but nearly all delivered, large bodies.
	for i := 0; i < 30; i++ {
		records = append(records, smtpFlow("7.7.7.7", i, 60000, i != 0, t0.Add(time.Duration(i)*time.Minute)))
	}
	got, err := Detect(records, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("legitimate relay flagged: %v", got)
	}
}

func TestDetectIgnoresLowVolume(t *testing.T) {
	var records []netflow.Record
	// A personal mail server: few destinations.
	for i := 0; i < 5; i++ {
		records = append(records, smtpFlow("8.8.8.8", i, 500, i%2 == 0, t0.Add(time.Duration(i)*time.Minute)))
	}
	got, err := Detect(records, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("low-volume sender flagged: %v", got)
	}
}

func TestDetectIgnoresNonSMTP(t *testing.T) {
	var records []netflow.Record
	for i := 0; i < 30; i++ {
		r := smtpFlow("9.9.9.9", i, 500, false, t0)
		r.DstPort = 80
		records = append(records, r)
	}
	got, err := Detect(records, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("non-SMTP traffic flagged: %v", got)
	}
}

func TestDetectAllRejected(t *testing.T) {
	// A bot whose every delivery is refused still gets flagged (reject
	// ratio 1.0, zero delivered payload).
	var records []netflow.Record
	for i := 0; i < 15; i++ {
		records = append(records, smtpFlow("6.6.6.7", i, 0, false, t0.Add(time.Duration(i)*time.Minute)))
	}
	got, err := Detect(records, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("fully-rejected spammer not flagged: %v", got)
	}
}

func TestDetectMixedPopulation(t *testing.T) {
	var records []netflow.Record
	for i := 0; i < 20; i++ {
		records = append(records, smtpFlow("6.6.6.6", i, 900, i%2 == 0, t0))
		records = append(records, smtpFlow("7.7.7.7", i, 60000, true, t0))
	}
	got, err := Detect(records, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Contains(netaddr.MustParseAddr("6.6.6.6")) {
		t.Fatalf("spammers = %v", got)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{MinServers: 0, MinFlows: 1, MaxAvgPayload: 1, MinRejectRatio: 0.1},
		{MinServers: 1, MinFlows: 0, MaxAvgPayload: 1, MinRejectRatio: 0.1},
		{MinServers: 1, MinFlows: 1, MaxAvgPayload: 0, MinRejectRatio: 0.1},
		{MinServers: 1, MinFlows: 1, MaxAvgPayload: 1, MinRejectRatio: 2},
	}
	for i, cfg := range bad {
		if _, err := Detect(nil, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

// Package spamdetect implements a behavioral spam detector over flow logs,
// standing in for the unnamed under-review method the paper uses for its
// observed spam reports (§3.1, footnote 3).
//
// The detector is behavioral in the same sense as the scan detector: it
// looks only at flow-level features of SMTP traffic, never payload. A
// spamming bot differs from a legitimate mail relay in fan-out (it
// delivers to many distinct mail servers), in rejection rate (much of its
// traffic is refused or tarpitted, yielding failed or tiny flows), and in
// per-message volume (template spam is small and uniform).
package spamdetect

import (
	"fmt"

	"unclean/internal/ipset"
	"unclean/internal/netaddr"
	"unclean/internal/netflow"
)

// SMTPPort is the destination port the detector watches.
const SMTPPort = 25

// Config parameterizes the detector.
type Config struct {
	// MinServers is the minimum number of distinct SMTP destinations a
	// source must deliver to before it can be flagged.
	MinServers int
	// MinFlows is the minimum total SMTP flow count.
	MinFlows int
	// MaxAvgPayload is the per-flow average payload ceiling (bytes);
	// template spam is small, real mail (attachments, threads) is not.
	MaxAvgPayload float64
	// MinRejectRatio is the minimum fraction of SMTP flows that failed
	// (no established, payload-bearing exchange).
	MinRejectRatio float64
}

// DefaultConfig returns the settings used for the observed spam reports.
func DefaultConfig() Config {
	return Config{
		MinServers:     8,
		MinFlows:       12,
		MaxAvgPayload:  4096,
		MinRejectRatio: 0.25,
	}
}

func (c Config) validate() error {
	if c.MinServers < 1 || c.MinFlows < 1 {
		return fmt.Errorf("spamdetect: MinServers and MinFlows must be positive")
	}
	if c.MaxAvgPayload <= 0 {
		return fmt.Errorf("spamdetect: MaxAvgPayload must be positive")
	}
	if c.MinRejectRatio < 0 || c.MinRejectRatio > 1 {
		return fmt.Errorf("spamdetect: MinRejectRatio must be in [0,1]")
	}
	return nil
}

type senderStats struct {
	servers      map[netaddr.Addr]struct{}
	flows        int
	rejected     int
	payloadTotal uint64
}

// Detect runs the detector over a record slice and returns the flagged
// spamming sources.
func Detect(records []netflow.Record, cfg Config) (ipset.Set, error) {
	if err := cfg.validate(); err != nil {
		return ipset.Set{}, err
	}
	senders := make(map[netaddr.Addr]*senderStats)
	for i := range records {
		r := &records[i]
		if r.Proto != netflow.ProtoTCP || r.DstPort != SMTPPort {
			continue
		}
		s := senders[r.SrcAddr]
		if s == nil {
			s = &senderStats{servers: make(map[netaddr.Addr]struct{})}
			senders[r.SrcAddr] = s
		}
		s.servers[r.DstAddr] = struct{}{}
		s.flows++
		if r.PayloadBearing() {
			s.payloadTotal += uint64(r.PayloadBytes())
		} else {
			s.rejected++
		}
	}
	out := ipset.NewBuilder(0)
	for addr, s := range senders {
		if len(s.servers) < cfg.MinServers || s.flows < cfg.MinFlows {
			continue
		}
		rejectRatio := float64(s.rejected) / float64(s.flows)
		delivered := s.flows - s.rejected
		avgPayload := 0.0
		if delivered > 0 {
			avgPayload = float64(s.payloadTotal) / float64(delivered)
		}
		if rejectRatio >= cfg.MinRejectRatio && avgPayload <= cfg.MaxAvgPayload {
			out.Add(addr)
		}
	}
	return out.Build(), nil
}

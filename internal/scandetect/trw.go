// Package scandetect identifies scanning sources in flow logs. It
// implements the two behavioral methods the paper cites (§3.1):
//
//   - Threshold Random Walk (Jung et al., Oakland 2004): sequential
//     hypothesis testing over per-source connection outcomes.
//   - Hourly threshold detection in the spirit of Gates et al. (ISCC
//     2006): per-hour fan-out counting. This is the method the paper's
//     observed scan reports use, and it is deliberately blind to slow
//     scanners ("less than 30 addresses per day", §6.2) — reproducing
//     that detector bias matters for the unknown-population analysis.
package scandetect

import (
	"fmt"
	"math"
	"sort"

	"unclean/internal/ipset"
	"unclean/internal/netaddr"
	"unclean/internal/netflow"
)

// Outcome classifies one flow as a connection success or failure for the
// purposes of the random walk.
type Outcome uint8

// Outcomes.
const (
	// Success: the destination talked back enough for payload exchange.
	Success Outcome = iota
	// Failure: no established connection (SYN-only, RST, or no ACK).
	Failure
)

// Classify maps a flow record to a TRW outcome. A flow counts as a success
// if it carried an ACK and at least one byte beyond bare headers; anything
// else — SYN-only probes, RST responses, half-open attempts — is a failure.
func Classify(r *netflow.Record) Outcome {
	if r.Proto != netflow.ProtoTCP {
		// Non-TCP probes (UDP/ICMP sweeps) count as failures: scanners
		// probing dark space get nothing back.
		return Failure
	}
	if r.TCPFlags&netflow.FlagRST != 0 {
		return Failure
	}
	if r.TCPFlags&netflow.FlagACK != 0 && r.PayloadBytes() > 0 {
		return Success
	}
	return Failure
}

// TRWConfig parameterizes the sequential hypothesis test.
type TRWConfig struct {
	// Theta0 is the probability a benign source's connection succeeds.
	Theta0 float64
	// Theta1 is the probability a scanner's connection succeeds.
	Theta1 float64
	// Alpha is the acceptable false-positive rate, Beta the acceptable
	// false-negative rate; together they set the decision thresholds.
	Alpha, Beta float64
}

// DefaultTRWConfig returns the parameters from Jung et al.:
// theta0=0.8, theta1=0.2, alpha=0.01, beta=0.99 detection.
func DefaultTRWConfig() TRWConfig {
	return TRWConfig{Theta0: 0.8, Theta1: 0.2, Alpha: 0.01, Beta: 0.01}
}

func (c TRWConfig) validate() error {
	if !(c.Theta1 < c.Theta0) || c.Theta0 <= 0 || c.Theta0 >= 1 || c.Theta1 <= 0 || c.Theta1 >= 1 {
		return fmt.Errorf("scandetect: need 0 < theta1 < theta0 < 1, got %v, %v", c.Theta1, c.Theta0)
	}
	if c.Alpha <= 0 || c.Alpha >= 1 || c.Beta <= 0 || c.Beta >= 1 {
		return fmt.Errorf("scandetect: alpha and beta must be in (0,1)")
	}
	return nil
}

// TRW is the sequential hypothesis tester. It consumes flows (in any
// order; per-source first-contact ordering is handled internally by
// distinct-destination tracking) and accumulates per-source log-likelihood
// ratios.
type TRW struct {
	cfg       TRWConfig
	upperLog  float64 // log eta1: declare scanner
	lowerLog  float64 // log eta0: declare benign
	successLL float64 // log((1-theta1)/(1-theta0)) < 0
	failureLL float64 // log(theta1/theta0) ... wait: see NewTRW
	sources   map[netaddr.Addr]*trwSource
}

type trwSource struct {
	llr       float64
	decided   bool
	scanner   bool
	contacted map[netaddr.Addr]struct{}
}

// NewTRW builds a tester; it returns an error for inconsistent parameters.
func NewTRW(cfg TRWConfig) (*TRW, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Likelihood ratio of H1 (scanner) vs H0 (benign): a success multiplies
	// by theta1/theta0 (<1), a failure by (1-theta1)/(1-theta0) (>1).
	return &TRW{
		cfg:       cfg,
		upperLog:  math.Log((1 - cfg.Beta) / cfg.Alpha),
		lowerLog:  math.Log(cfg.Beta / (1 - cfg.Alpha)),
		successLL: math.Log(cfg.Theta1 / cfg.Theta0),
		failureLL: math.Log((1 - cfg.Theta1) / (1 - cfg.Theta0)),
		sources:   make(map[netaddr.Addr]*trwSource),
	}, nil
}

// Observe feeds one flow into the walk. Only the first contact with each
// distinct destination moves a source's ratio (repeat flows to the same
// destination are not independent evidence).
func (t *TRW) Observe(r *netflow.Record) {
	src := t.sources[r.SrcAddr]
	if src == nil {
		src = &trwSource{contacted: make(map[netaddr.Addr]struct{})}
		t.sources[r.SrcAddr] = src
	}
	if src.decided && src.scanner {
		return // verdict is final for scanners
	}
	if _, seen := src.contacted[r.DstAddr]; seen {
		return
	}
	src.contacted[r.DstAddr] = struct{}{}
	if Classify(r) == Success {
		src.llr += t.successLL
	} else {
		src.llr += t.failureLL
	}
	switch {
	case src.llr >= t.upperLog:
		src.decided, src.scanner = true, true
	case src.llr <= t.lowerLog:
		// Benign verdict; the walk restarts so a later compromise of the
		// same address can still be caught.
		src.decided, src.scanner = false, false
		src.llr = 0
	}
}

// Scanners returns the set of sources flagged as scanners so far.
func (t *TRW) Scanners() ipset.Set {
	b := ipset.NewBuilder(0)
	for a, s := range t.sources {
		if s.decided && s.scanner {
			b.Add(a)
		}
	}
	return b.Build()
}

// SourceCount returns how many distinct sources have been observed.
func (t *TRW) SourceCount() int { return len(t.sources) }

// DetectTRW runs the random walk over a record slice and returns the
// flagged scanners. Records are processed in timestamp order.
func DetectTRW(records []netflow.Record, cfg TRWConfig) (ipset.Set, error) {
	t, err := NewTRW(cfg)
	if err != nil {
		return ipset.Set{}, err
	}
	idx := make([]int, len(records))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return records[idx[a]].First.Before(records[idx[b]].First)
	})
	for _, i := range idx {
		t.Observe(&records[i])
	}
	return t.Scanners(), nil
}

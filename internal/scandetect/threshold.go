package scandetect

import (
	"fmt"
	"time"

	"unclean/internal/ipset"
	"unclean/internal/netaddr"
	"unclean/internal/netflow"
)

// ThresholdConfig parameterizes the hourly fan-out detector: a source is a
// scanner if, within any single clock hour, it contacts at least MinTargets
// distinct destinations of which at least MinFailureRatio fail.
type ThresholdConfig struct {
	// Window is the bucketing interval (the paper's detector is
	// "calibrated to identify scans that take place over an hour").
	Window time.Duration
	// MinTargets is the distinct-destination fan-out threshold per window.
	MinTargets int
	// MinFailureRatio is the minimum fraction of failed contacts per
	// window for the fan-out to count as scanning rather than a busy
	// client.
	MinFailureRatio float64
}

// DefaultThresholdConfig returns the hour/32-target/0.5-failure settings
// used for the observed scan reports. A scanner probing fewer than ~30
// addresses per day never trips it — the slow-scanner blind spot the
// paper observes in its unknown population (§6.2).
func DefaultThresholdConfig() ThresholdConfig {
	return ThresholdConfig{Window: time.Hour, MinTargets: 32, MinFailureRatio: 0.5}
}

func (c ThresholdConfig) validate() error {
	if c.Window <= 0 {
		return fmt.Errorf("scandetect: window must be positive")
	}
	if c.MinTargets < 2 {
		return fmt.Errorf("scandetect: MinTargets must be at least 2")
	}
	if c.MinFailureRatio < 0 || c.MinFailureRatio > 1 {
		return fmt.Errorf("scandetect: MinFailureRatio must be in [0,1]")
	}
	return nil
}

type hourBucket struct {
	src  netaddr.Addr
	hour int64
}

type bucketStats struct {
	dsts map[netaddr.Addr]Outcome
}

// DetectThreshold runs the hourly fan-out detector over a record slice and
// returns the flagged scanners.
func DetectThreshold(records []netflow.Record, cfg ThresholdConfig) (ipset.Set, error) {
	if err := cfg.validate(); err != nil {
		return ipset.Set{}, err
	}
	buckets := make(map[hourBucket]*bucketStats)
	for i := range records {
		r := &records[i]
		key := hourBucket{src: r.SrcAddr, hour: r.First.UnixNano() / int64(cfg.Window)}
		b := buckets[key]
		if b == nil {
			b = &bucketStats{dsts: make(map[netaddr.Addr]Outcome)}
			buckets[key] = b
		}
		// A destination that ever succeeded in the window stays a success.
		if prev, seen := b.dsts[r.DstAddr]; !seen || prev == Failure {
			b.dsts[r.DstAddr] = Classify(r)
		}
	}
	out := ipset.NewBuilder(0)
	flagged := make(map[netaddr.Addr]struct{})
	for key, b := range buckets {
		if _, done := flagged[key.src]; done {
			continue
		}
		if len(b.dsts) < cfg.MinTargets {
			continue
		}
		failures := 0
		for _, o := range b.dsts {
			if o == Failure {
				failures++
			}
		}
		if float64(failures) >= cfg.MinFailureRatio*float64(len(b.dsts)) {
			flagged[key.src] = struct{}{}
			out.Add(key.src)
		}
	}
	return out.Build(), nil
}

package scandetect

import (
	"testing"
	"time"

	"unclean/internal/netaddr"
	"unclean/internal/netflow"
)

var t0 = time.Date(2006, 10, 1, 12, 0, 0, 0, time.UTC)

// probe builds a failed connection attempt (SYN only, no payload).
func probe(src, dst string, at time.Time) netflow.Record {
	return netflow.Record{
		SrcAddr: netaddr.MustParseAddr(src), DstAddr: netaddr.MustParseAddr(dst),
		Packets: 2, Octets: 96, First: at, Last: at.Add(time.Second),
		SrcPort: 4321, DstPort: 445, TCPFlags: netflow.FlagSYN, Proto: netflow.ProtoTCP,
	}
}

// session builds an established, payload-bearing connection.
func session(src, dst string, at time.Time) netflow.Record {
	return netflow.Record{
		SrcAddr: netaddr.MustParseAddr(src), DstAddr: netaddr.MustParseAddr(dst),
		Packets: 12, Octets: 5000, First: at, Last: at.Add(30 * time.Second),
		SrcPort: 4321, DstPort: 80,
		TCPFlags: netflow.FlagSYN | netflow.FlagACK | netflow.FlagPSH | netflow.FlagFIN,
		Proto:    netflow.ProtoTCP,
	}
}

func dstAddr(i int) string {
	return netaddr.MakeAddr(30, byte(i>>8), byte(i), 1).String()
}

func TestClassify(t *testing.T) {
	p := probe("1.1.1.1", "30.0.0.1", t0)
	if Classify(&p) != Failure {
		t.Error("SYN probe should classify as failure")
	}
	s := session("1.1.1.1", "30.0.0.1", t0)
	if Classify(&s) != Success {
		t.Error("payload session should classify as success")
	}
	rst := s
	rst.TCPFlags |= netflow.FlagRST
	if Classify(&rst) != Failure {
		t.Error("RST flow should classify as failure")
	}
	udp := s
	udp.Proto = netflow.ProtoUDP
	if Classify(&udp) != Failure {
		t.Error("UDP flow should classify as failure")
	}
}

func TestTRWFlagsScanner(t *testing.T) {
	var records []netflow.Record
	for i := 0; i < 20; i++ {
		records = append(records, probe("6.6.6.6", dstAddr(i), t0.Add(time.Duration(i)*time.Second)))
	}
	got, err := DetectTRW(records, DefaultTRWConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Contains(netaddr.MustParseAddr("6.6.6.6")) {
		t.Fatalf("scanners = %v, want {6.6.6.6}", got)
	}
}

func TestTRWIgnoresBenignClient(t *testing.T) {
	var records []netflow.Record
	// A busy benign client: many destinations, nearly all succeed.
	for i := 0; i < 40; i++ {
		records = append(records, session("7.7.7.7", dstAddr(i), t0.Add(time.Duration(i)*time.Second)))
	}
	records = append(records, probe("7.7.7.7", dstAddr(99), t0.Add(time.Hour)))
	got, err := DetectTRW(records, DefaultTRWConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("benign client flagged: %v", got)
	}
}

func TestTRWRepeatDestinationsNotEvidence(t *testing.T) {
	var records []netflow.Record
	// Many failures, all to the same destination: retries, not a scan.
	for i := 0; i < 50; i++ {
		records = append(records, probe("8.8.8.8", dstAddr(1), t0.Add(time.Duration(i)*time.Second)))
	}
	got, err := DetectTRW(records, DefaultTRWConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("retry traffic flagged as scanning: %v", got)
	}
}

func TestTRWMixedPopulation(t *testing.T) {
	var records []netflow.Record
	for i := 0; i < 25; i++ {
		records = append(records, probe("6.6.6.6", dstAddr(i), t0.Add(time.Duration(i)*time.Second)))
		records = append(records, session("7.7.7.7", dstAddr(i), t0.Add(time.Duration(i)*time.Second)))
	}
	got, err := DetectTRW(records, DefaultTRWConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Contains(netaddr.MustParseAddr("6.6.6.6")) {
		t.Fatalf("scanners = %v", got)
	}
}

func TestTRWConfigValidation(t *testing.T) {
	bad := []TRWConfig{
		{Theta0: 0.2, Theta1: 0.8, Alpha: 0.01, Beta: 0.01}, // reversed
		{Theta0: 0.8, Theta1: 0.2, Alpha: 0, Beta: 0.01},
		{Theta0: 1, Theta1: 0.2, Alpha: 0.01, Beta: 0.01},
		{Theta0: 0.8, Theta1: 0.2, Alpha: 0.01, Beta: 1},
	}
	for i, cfg := range bad {
		if _, err := NewTRW(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestTRWSourceCount(t *testing.T) {
	tr, err := NewTRW(DefaultTRWConfig())
	if err != nil {
		t.Fatal(err)
	}
	r1 := probe("1.1.1.1", dstAddr(0), t0)
	r2 := probe("2.2.2.2", dstAddr(0), t0)
	tr.Observe(&r1)
	tr.Observe(&r2)
	tr.Observe(&r1)
	if tr.SourceCount() != 2 {
		t.Fatalf("SourceCount = %d, want 2", tr.SourceCount())
	}
}

func TestThresholdFlagsHourlyScanner(t *testing.T) {
	var records []netflow.Record
	// 40 distinct failed targets within a single hour.
	for i := 0; i < 40; i++ {
		records = append(records, probe("6.6.6.6", dstAddr(i), t0.Add(time.Duration(i)*time.Minute/2)))
	}
	got, err := DetectThreshold(records, DefaultThresholdConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Contains(netaddr.MustParseAddr("6.6.6.6")) {
		t.Fatalf("scanners = %v", got)
	}
}

func TestThresholdMissesSlowScanner(t *testing.T) {
	// The §6.2 blind spot: under 30 addresses per day, spread out, never
	// 32 in one hour.
	var records []netflow.Record
	for day := 0; day < 5; day++ {
		for i := 0; i < 25; i++ {
			at := t0.Add(time.Duration(day)*24*time.Hour + time.Duration(i)*37*time.Minute)
			records = append(records, probe("9.9.9.9", dstAddr(day*25+i), at))
		}
	}
	got, err := DetectThreshold(records, DefaultThresholdConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("slow scanner should evade the hourly detector, got %v", got)
	}
	// But TRW, which is rate-independent, must catch it.
	trw, err := DetectTRW(records, DefaultTRWConfig())
	if err != nil {
		t.Fatal(err)
	}
	if trw.Len() != 1 {
		t.Fatalf("TRW should catch the slow scanner, got %v", trw)
	}
}

func TestThresholdIgnoresBusySuccessfulClient(t *testing.T) {
	var records []netflow.Record
	for i := 0; i < 60; i++ {
		records = append(records, session("7.7.7.7", dstAddr(i), t0.Add(time.Duration(i)*time.Minute/2)))
	}
	got, err := DetectThreshold(records, DefaultThresholdConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("successful fan-out flagged: %v", got)
	}
}

func TestThresholdConfigValidation(t *testing.T) {
	bad := []ThresholdConfig{
		{Window: 0, MinTargets: 32, MinFailureRatio: 0.5},
		{Window: time.Hour, MinTargets: 1, MinFailureRatio: 0.5},
		{Window: time.Hour, MinTargets: 32, MinFailureRatio: 1.5},
	}
	for i, cfg := range bad {
		if _, err := DetectThreshold(nil, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestThresholdDedupesDestinationOutcomes(t *testing.T) {
	// A destination probed then successfully connected counts once, as a
	// success, so heavy retried traffic to few hosts never flags.
	var records []netflow.Record
	for i := 0; i < 40; i++ {
		records = append(records, probe("5.5.5.5", dstAddr(i%4), t0.Add(time.Duration(i)*time.Second)))
		records = append(records, session("5.5.5.5", dstAddr(i%4), t0.Add(time.Duration(i)*time.Second+500*time.Millisecond)))
	}
	got, err := DetectThreshold(records, DefaultThresholdConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("retried traffic to 4 hosts flagged: %v", got)
	}
}

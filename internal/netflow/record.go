// Package netflow implements the Cisco NetFlow V5 export format: the
// traffic-log representation the paper's observed reports and blocking
// analysis are computed from (§6.1). It provides the 48-byte record and
// 24-byte header codecs, a streaming reader/writer for packed export
// datagram streams, and the payload-bearing classification rule.
package netflow

import (
	"fmt"
	"time"

	"unclean/internal/netaddr"
)

// IP protocol numbers used by the analyses.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// TCP flag bits as accumulated in the NetFlow tcp_flags field (OR of all
// flags seen on the flow).
const (
	FlagFIN = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// Record is one unidirectional flow: a log of all identically addressed
// packets within a limited time (§6.1). Fields mirror NetFlow V5.
type Record struct {
	SrcAddr  netaddr.Addr
	DstAddr  netaddr.Addr
	NextHop  netaddr.Addr
	Input    uint16 // SNMP ifIndex in
	Output   uint16 // SNMP ifIndex out
	Packets  uint32
	Octets   uint32
	First    time.Time // time of the first packet
	Last     time.Time // time of the last packet
	SrcPort  uint16
	DstPort  uint16
	TCPFlags uint8 // cumulative OR of TCP flags
	Proto    uint8
	TOS      uint8
	SrcAS    uint16
	DstAS    uint16
	SrcMask  uint8
	DstMask  uint8
}

// ipTCPHeaderBytes is the minimum per-packet overhead of an IPv4+TCP
// header without options. The paper's payload measure is octets beyond
// this floor, which means TCP options count as "payload" — exactly the
// artifact that creates the 36-byte SYN-scan ambiguity discussed in §6.1.
const ipTCPHeaderBytes = 40

// minPayload is the payload-bearing threshold from §6.1: "at least 36
// bytes of payload and at least one ACK flag".
const minPayload = 36

// PayloadBytes estimates the bytes of the flow beyond minimal IP+TCP
// headers. It never returns a negative value.
func (r *Record) PayloadBytes() uint32 {
	overhead := r.Packets * ipTCPHeaderBytes
	if r.Octets <= overhead {
		return 0
	}
	return r.Octets - overhead
}

// PayloadBearing implements the §6.1 rule: a TCP flow with at least 36
// bytes of payload and at least one ACK flag. SYN-only scans whose TCP
// options push them past 36 bytes fail the ACK requirement.
func (r *Record) PayloadBearing() bool {
	return r.Proto == ProtoTCP &&
		r.TCPFlags&FlagACK != 0 &&
		r.PayloadBytes() >= minPayload
}

// Duration returns Last-First; zero for single-packet flows.
func (r *Record) Duration() time.Duration { return r.Last.Sub(r.First) }

// Validate checks internal consistency: a flow must carry at least one
// packet, at least as many octets as packets, and must not end before it
// starts.
func (r *Record) Validate() error {
	if r.Packets == 0 {
		return fmt.Errorf("netflow: flow with zero packets")
	}
	if r.Octets < r.Packets {
		return fmt.Errorf("netflow: %d octets < %d packets", r.Octets, r.Packets)
	}
	if r.Last.Before(r.First) {
		return fmt.Errorf("netflow: flow ends %v before it starts %v", r.Last, r.First)
	}
	return nil
}

// String renders the record in a compact flowcat-style line.
func (r *Record) String() string {
	return fmt.Sprintf("%s:%d -> %s:%d proto=%d pkts=%d bytes=%d flags=%s %s",
		r.SrcAddr, r.SrcPort, r.DstAddr, r.DstPort, r.Proto,
		r.Packets, r.Octets, FlagString(r.TCPFlags),
		r.First.UTC().Format("2006-01-02T15:04:05Z"))
}

// FlagString renders TCP flags as the conventional "SA" style letters,
// or "-" when none are set.
func FlagString(flags uint8) string {
	if flags == 0 {
		return "-"
	}
	letters := []struct {
		bit  uint8
		name byte
	}{
		{FlagURG, 'U'}, {FlagACK, 'A'}, {FlagPSH, 'P'},
		{FlagRST, 'R'}, {FlagSYN, 'S'}, {FlagFIN, 'F'},
	}
	var out []byte
	for _, l := range letters {
		if flags&l.bit != 0 {
			out = append(out, l.name)
		}
	}
	return string(out)
}

package netflow

import (
	"errors"
	"fmt"
	"io"
	"time"
)

// Writer packs records into NetFlow V5 export datagrams (at most 30
// records each) and writes them back-to-back to an underlying stream —
// the layout of an on-disk flow archive.
type Writer struct {
	w        io.Writer
	boot     time.Time
	pending  []Record
	sequence uint32
	buf      [HeaderSize + MaxPerPacket*RecordSize]byte
	err      error
}

// NewWriter returns a Writer whose sysUptime clock starts at boot. All
// record timestamps must be >= boot and within ~49 days of it (the range
// of the 32-bit millisecond uptime field).
func NewWriter(w io.Writer, boot time.Time) *Writer {
	return &Writer{w: w, boot: boot.UTC()}
}

// Write queues one record, flushing a datagram when 30 are pending.
func (w *Writer) Write(r Record) error {
	if w.err != nil {
		return w.err
	}
	if err := r.Validate(); err != nil {
		return err
	}
	if r.First.Before(w.boot) {
		return fmt.Errorf("netflow: record starts %v before exporter boot %v", r.First, w.boot)
	}
	w.pending = append(w.pending, r)
	if len(w.pending) >= MaxPerPacket {
		return w.flushPacket()
	}
	return nil
}

// Flush writes any pending records as a final (possibly short) datagram.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if len(w.pending) == 0 {
		return nil
	}
	return w.flushPacket()
}

func (w *Writer) flushPacket() error {
	n := len(w.pending)
	// Export time: the latest record end in the batch.
	export := w.pending[0].Last
	for _, r := range w.pending[1:] {
		if r.Last.After(export) {
			export = r.Last
		}
	}
	h := Header{
		Count:        uint16(n),
		SysUptime:    uint32(export.Sub(w.boot) / time.Millisecond),
		ExportTime:   export,
		FlowSequence: w.sequence,
	}
	MarshalHeader(w.buf[:], &h)
	for i, r := range w.pending {
		marshalRecord(w.buf[HeaderSize+i*RecordSize:], &r, w.boot)
	}
	w.sequence += uint32(n)
	w.pending = w.pending[:0]
	if _, err := w.w.Write(w.buf[:HeaderSize+n*RecordSize]); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Sequence returns the number of records flushed so far.
func (w *Writer) Sequence() uint32 { return w.sequence }

// Reader streams records out of a concatenation of NetFlow V5 export
// datagrams, as produced by Writer.
type Reader struct {
	r       io.Reader
	pending []Record
	buf     [MaxPerPacket * RecordSize]byte
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

// Next returns the next record, or io.EOF at clean end of stream. A
// truncated datagram yields io.ErrUnexpectedEOF.
func (r *Reader) Next() (Record, error) {
	if len(r.pending) == 0 {
		if err := r.readPacket(); err != nil {
			return Record{}, err
		}
	}
	rec := r.pending[0]
	r.pending = r.pending[1:]
	return rec, nil
}

// ReadAll drains the stream into a slice.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

func (r *Reader) readPacket() error {
	hdr := r.buf[:HeaderSize]
	if _, err := io.ReadFull(r.r, hdr); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return io.ErrUnexpectedEOF
		}
		return err // io.EOF at a packet boundary is a clean end
	}
	h, err := UnmarshalHeader(hdr)
	if err != nil {
		return err
	}
	body := r.buf[:int(h.Count)*RecordSize]
	if _, err := io.ReadFull(r.r, body); err != nil {
		return io.ErrUnexpectedEOF
	}
	boot := h.bootTime()
	r.pending = r.pending[:0]
	for i := 0; i < int(h.Count); i++ {
		r.pending = append(r.pending, unmarshalRecord(body[i*RecordSize:], boot))
	}
	return nil
}

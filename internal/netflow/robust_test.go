package netflow

import (
	"bytes"
	"testing"
	"testing/quick"
)

// The stream reader consumes archive bytes; arbitrary input must return
// an error or clean EOF, never panic, and never read unbounded memory.
func TestReaderNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Reader panicked on %d bytes: %v", len(data), r)
			}
		}()
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 100; i++ { // bounded drain
			if _, err := r.Next(); err != nil {
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalHeaderNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("UnmarshalHeader panicked: %v", r)
			}
		}()
		_, _ = UnmarshalHeader(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

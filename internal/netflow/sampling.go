package netflow

import (
	"fmt"

	"unclean/internal/stats"
)

// SampleRecords simulates packet-sampled NetFlow at 1-in-interval: each
// flow's observed packet count is Binomial(packets, 1/interval), flows
// with no sampled packets vanish, and octets shrink proportionally.
// Routers exporting at high rates sample heavily; the blind spot this
// creates for small flows (scans are 2–3 packets!) is a well-known
// operational limit of flow-based detection, quantified by the sampling
// ablation in bench_test.go.
//
// Counts are NOT renormalized (multiplied back by the interval): the
// detectors consume raw sampled records, as they would from a sampled
// exporter. TCP flag bits are kept as-is — V5 exporters OR flags from
// sampled packets only, but per-packet flag attribution is not modeled.
func SampleRecords(records []Record, interval int, rng *stats.RNG) ([]Record, error) {
	if interval < 1 {
		return nil, fmt.Errorf("netflow: sampling interval must be >= 1")
	}
	if interval == 1 {
		out := make([]Record, len(records))
		copy(out, records)
		return out, nil
	}
	p := 1 / float64(interval)
	out := make([]Record, 0, len(records)/interval+1)
	for i := range records {
		r := records[i]
		sampled := rng.Binomial(int(r.Packets), p)
		if sampled == 0 {
			continue
		}
		// Scale octets by the sampled fraction, keeping at least one
		// byte per packet.
		frac := float64(sampled) / float64(r.Packets)
		octets := uint32(float64(r.Octets) * frac)
		if octets < uint32(sampled) {
			octets = uint32(sampled)
		}
		r.Packets = uint32(sampled)
		r.Octets = octets
		out = append(out, r)
	}
	return out, nil
}

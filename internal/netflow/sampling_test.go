package netflow

import (
	"math"
	"testing"
	"time"

	"unclean/internal/stats"
)

func sampleInput(n int, pkts uint32) []Record {
	out := make([]Record, n)
	for i := range out {
		out[i] = Record{
			SrcAddr: 1, DstAddr: 2,
			Packets: pkts, Octets: pkts * 100,
			First: boot.Add(time.Duration(i) * time.Second),
			Last:  boot.Add(time.Duration(i)*time.Second + time.Second),
			Proto: ProtoTCP, TCPFlags: FlagSYN | FlagACK,
		}
	}
	return out
}

func TestSampleRecordsIdentity(t *testing.T) {
	in := sampleInput(50, 10)
	out, err := SampleRecords(in, 1, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("interval 1 dropped records: %d vs %d", len(out), len(in))
	}
	// Identity sampling must not alias the input.
	out[0].Packets = 999
	if in[0].Packets == 999 {
		t.Fatal("SampleRecords(1) shares storage with input")
	}
}

func TestSampleRecordsThinsSmallFlows(t *testing.T) {
	rng := stats.NewRNG(2)
	// 2-packet scan probes under 1-in-100 sampling: ~98% vanish.
	in := sampleInput(5000, 2)
	out, err := SampleRecords(in, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(len(out)) / float64(len(in))
	if frac > 0.06 {
		t.Errorf("small-flow survival %.3f, want ~0.02", frac)
	}
	// Big flows survive: 1000-packet transfers almost always sampled.
	big := sampleInput(500, 1000)
	outBig, err := SampleRecords(big, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if survival := float64(len(outBig)) / float64(len(big)); survival < 0.99 {
		t.Errorf("large-flow survival %.3f, want ~1", survival)
	}
}

func TestSampleRecordsCountsShrink(t *testing.T) {
	rng := stats.NewRNG(3)
	in := sampleInput(2000, 64)
	out, err := SampleRecords(in, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	var totalPkts float64
	for i := range out {
		r := &out[i]
		if r.Packets == 0 || r.Packets > 64 {
			t.Fatalf("sampled packets %d out of range", r.Packets)
		}
		if r.Octets < r.Packets {
			t.Fatalf("octets %d below packets %d", r.Octets, r.Packets)
		}
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
		totalPkts += float64(r.Packets)
	}
	// Expected sampled packets per flow: 64/8 = 8.
	mean := totalPkts / float64(len(out))
	if math.Abs(mean-8) > 0.5 {
		t.Errorf("mean sampled packets %.2f, want ~8", mean)
	}
}

func TestSampleRecordsRejectsBadInterval(t *testing.T) {
	if _, err := SampleRecords(nil, 0, stats.NewRNG(1)); err == nil {
		t.Fatal("interval 0 accepted")
	}
}

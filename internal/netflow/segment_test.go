package netflow

import (
	"testing"
	"time"

	"unclean/internal/netaddr"
)

// TestSegmentRoundTrip proves every field survives the spill encoding
// and that decoded timestamps compare Equal and format identically.
func TestSegmentRoundTrip(t *testing.T) {
	first := time.Date(2006, 10, 3, 14, 7, 9, 0, time.UTC)
	recs := []Record{
		{
			SrcAddr: netaddr.Addr(0x0a010203), DstAddr: netaddr.Addr(0xc0a80001),
			NextHop: netaddr.Addr(0xc0a800fe), Input: 3, Output: 7,
			Packets: 42, Octets: 9001,
			First: first, Last: first.Add(13 * time.Second),
			SrcPort: 51515, DstPort: 25,
			TCPFlags: FlagSYN | FlagACK | FlagPSH, Proto: ProtoTCP, TOS: 0x10,
			SrcAS: 65001, DstAS: 65002, SrcMask: 24, DstMask: 16,
		},
		{First: time.Unix(0, 0).UTC(), Last: time.Unix(0, 0).UTC()}, // minimal record
		{
			SrcAddr: netaddr.Addr(0xffffffff), DstAddr: netaddr.Addr(1),
			Packets: 1, Octets: 40,
			First: first.Add(-time.Hour), Last: first.Add(-time.Hour),
			Proto: ProtoUDP,
		},
	}
	for i := range recs {
		var buf [SegmentRecordSize]byte
		EncodeSegmentRecord(buf[:], &recs[i])
		var back Record
		if err := DecodeSegmentRecord(buf[:], &back); err != nil {
			t.Fatal(err)
		}
		if back.SrcAddr != recs[i].SrcAddr || back.DstAddr != recs[i].DstAddr ||
			back.NextHop != recs[i].NextHop || back.Input != recs[i].Input ||
			back.Output != recs[i].Output || back.Packets != recs[i].Packets ||
			back.Octets != recs[i].Octets || back.SrcPort != recs[i].SrcPort ||
			back.DstPort != recs[i].DstPort || back.TCPFlags != recs[i].TCPFlags ||
			back.Proto != recs[i].Proto || back.TOS != recs[i].TOS ||
			back.SrcAS != recs[i].SrcAS || back.DstAS != recs[i].DstAS ||
			back.SrcMask != recs[i].SrcMask || back.DstMask != recs[i].DstMask {
			t.Fatalf("record %d fields changed across round trip:\n got %+v\nwant %+v", i, back, recs[i])
		}
		if !back.First.Equal(recs[i].First) || !back.Last.Equal(recs[i].Last) {
			t.Fatalf("record %d times changed: got %v/%v, want %v/%v",
				i, back.First, back.Last, recs[i].First, recs[i].Last)
		}
		if back.String() != recs[i].String() {
			t.Fatalf("record %d renders differently after round trip", i)
		}
	}
}

// TestSegmentDecodeTruncated checks short buffers error cleanly.
func TestSegmentDecodeTruncated(t *testing.T) {
	var r Record
	if err := DecodeSegmentRecord(make([]byte, SegmentRecordSize-1), &r); err == nil {
		t.Fatal("truncated buffer decoded without error")
	}
}

package netflow

import (
	"bytes"
	"testing"
	"time"

	"unclean/internal/netaddr"
)

func benchRecords(n int) []Record {
	out := make([]Record, n)
	for i := range out {
		out[i] = Record{
			SrcAddr: netaddr.Addr(0x0a000001 + uint32(i)),
			DstAddr: netaddr.Addr(0x1e000001),
			Packets: 10, Octets: 2000,
			First:   boot.Add(time.Duration(i) * time.Millisecond),
			Last:    boot.Add(time.Duration(i)*time.Millisecond + time.Second),
			SrcPort: 4000, DstPort: 80,
			TCPFlags: FlagSYN | FlagACK, Proto: ProtoTCP,
		}
	}
	return out
}

func BenchmarkWriter(b *testing.B) {
	records := benchRecords(3000)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		w := NewWriter(&buf, boot)
		for j := range records {
			if err := w.Write(records[j]); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(records)) * RecordSize)
}

func BenchmarkReader(b *testing.B) {
	records := benchRecords(3000)
	var buf bytes.Buffer
	w := NewWriter(&buf, boot)
	for j := range records {
		if err := w.Write(records[j]); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	wire := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := NewReader(bytes.NewReader(wire)).ReadAll()
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(records) {
			b.Fatal("short read")
		}
	}
	b.SetBytes(int64(len(records)) * RecordSize)
}

func BenchmarkPayloadBearing(b *testing.B) {
	records := benchRecords(1000)
	count := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range records {
			if records[j].PayloadBearing() {
				count++
			}
		}
	}
	if count == 0 {
		b.Fatal("no payload-bearing records")
	}
}

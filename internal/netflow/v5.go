package netflow

import (
	"encoding/binary"
	"fmt"
	"time"

	"unclean/internal/netaddr"
)

// NetFlow V5 wire format constants.
const (
	Version      = 5
	HeaderSize   = 24
	RecordSize   = 48
	MaxPerPacket = 30 // V5 export datagrams carry at most 30 records
)

// Header is the 24-byte NetFlow V5 export datagram header.
type Header struct {
	Count            uint16    // records in this datagram
	SysUptime        uint32    // ms since exporter boot
	ExportTime       time.Time // unix_secs + unix_nsecs
	FlowSequence     uint32    // sequence counter of total flows seen
	EngineType       uint8
	EngineID         uint8
	SamplingInterval uint16
}

// bootTime reconstructs the exporter's boot instant from the header's
// export time and uptime; record First/Last are relative to it.
func (h *Header) bootTime() time.Time {
	return h.ExportTime.Add(-time.Duration(h.SysUptime) * time.Millisecond)
}

// MarshalHeader encodes h into buf, which must be at least HeaderSize
// bytes. It returns the number of bytes written.
func MarshalHeader(buf []byte, h *Header) int {
	be := binary.BigEndian
	be.PutUint16(buf[0:], Version)
	be.PutUint16(buf[2:], h.Count)
	be.PutUint32(buf[4:], h.SysUptime)
	be.PutUint32(buf[8:], uint32(h.ExportTime.Unix()))
	be.PutUint32(buf[12:], uint32(h.ExportTime.Nanosecond()))
	be.PutUint32(buf[16:], h.FlowSequence)
	buf[20] = h.EngineType
	buf[21] = h.EngineID
	be.PutUint16(buf[22:], h.SamplingInterval)
	return HeaderSize
}

// UnmarshalHeader decodes a header from buf, validating the version.
func UnmarshalHeader(buf []byte) (Header, error) {
	if len(buf) < HeaderSize {
		return Header{}, fmt.Errorf("netflow: short header: %d bytes", len(buf))
	}
	be := binary.BigEndian
	if v := be.Uint16(buf[0:]); v != Version {
		return Header{}, fmt.Errorf("netflow: unsupported version %d", v)
	}
	h := Header{
		Count:            be.Uint16(buf[2:]),
		SysUptime:        be.Uint32(buf[4:]),
		ExportTime:       time.Unix(int64(be.Uint32(buf[8:])), int64(be.Uint32(buf[12:]))).UTC(),
		FlowSequence:     be.Uint32(buf[16:]),
		EngineType:       buf[20],
		EngineID:         buf[21],
		SamplingInterval: be.Uint16(buf[22:]),
	}
	if h.Count == 0 || h.Count > MaxPerPacket {
		return Header{}, fmt.Errorf("netflow: implausible record count %d", h.Count)
	}
	return h, nil
}

// marshalRecord encodes r into buf (>= RecordSize bytes) with First/Last
// expressed as sysUptime milliseconds relative to boot.
func marshalRecord(buf []byte, r *Record, boot time.Time) {
	be := binary.BigEndian
	be.PutUint32(buf[0:], uint32(r.SrcAddr))
	be.PutUint32(buf[4:], uint32(r.DstAddr))
	be.PutUint32(buf[8:], uint32(r.NextHop))
	be.PutUint16(buf[12:], r.Input)
	be.PutUint16(buf[14:], r.Output)
	be.PutUint32(buf[16:], r.Packets)
	be.PutUint32(buf[20:], r.Octets)
	be.PutUint32(buf[24:], uint32(r.First.Sub(boot)/time.Millisecond))
	be.PutUint32(buf[28:], uint32(r.Last.Sub(boot)/time.Millisecond))
	be.PutUint16(buf[32:], r.SrcPort)
	be.PutUint16(buf[34:], r.DstPort)
	buf[36] = 0 // pad1
	buf[37] = r.TCPFlags
	buf[38] = r.Proto
	buf[39] = r.TOS
	be.PutUint16(buf[40:], r.SrcAS)
	be.PutUint16(buf[42:], r.DstAS)
	buf[44] = r.SrcMask
	buf[45] = r.DstMask
	buf[46], buf[47] = 0, 0 // pad2
}

// unmarshalRecord decodes one record from buf using boot to resolve
// absolute times.
func unmarshalRecord(buf []byte, boot time.Time) Record {
	be := binary.BigEndian
	return Record{
		SrcAddr:  netaddr.Addr(be.Uint32(buf[0:])),
		DstAddr:  netaddr.Addr(be.Uint32(buf[4:])),
		NextHop:  netaddr.Addr(be.Uint32(buf[8:])),
		Input:    be.Uint16(buf[12:]),
		Output:   be.Uint16(buf[14:]),
		Packets:  be.Uint32(buf[16:]),
		Octets:   be.Uint32(buf[20:]),
		First:    boot.Add(time.Duration(be.Uint32(buf[24:])) * time.Millisecond),
		Last:     boot.Add(time.Duration(be.Uint32(buf[28:])) * time.Millisecond),
		SrcPort:  be.Uint16(buf[32:]),
		DstPort:  be.Uint16(buf[34:]),
		TCPFlags: buf[37],
		Proto:    buf[38],
		TOS:      buf[39],
		SrcAS:    be.Uint16(buf[40:]),
		DstAS:    be.Uint16(buf[42:]),
		SrcMask:  buf[44],
		DstMask:  buf[45],
	}
}

package netflow

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"unclean/internal/netaddr"
)

var boot = time.Date(2006, 10, 1, 0, 0, 0, 0, time.UTC)

func tcpFlow(src, dst string, pkts, octets uint32, flags uint8) Record {
	return Record{
		SrcAddr:  netaddr.MustParseAddr(src),
		DstAddr:  netaddr.MustParseAddr(dst),
		Packets:  pkts,
		Octets:   octets,
		First:    boot.Add(time.Minute),
		Last:     boot.Add(2 * time.Minute),
		SrcPort:  40000,
		DstPort:  80,
		TCPFlags: flags,
		Proto:    ProtoTCP,
	}
}

func TestPayloadBytes(t *testing.T) {
	cases := []struct {
		pkts, octets, want uint32
	}{
		{1, 40, 0},   // bare header
		{1, 39, 0},   // undersized (clamped)
		{1, 76, 36},  // exactly threshold
		{3, 120, 0},  // 3-packet handshake, no payload
		{3, 156, 36}, // 3 packets with 36 option bytes
		{10, 1500, 1100},
	}
	for _, c := range cases {
		r := Record{Packets: c.pkts, Octets: c.octets}
		if got := r.PayloadBytes(); got != c.want {
			t.Errorf("PayloadBytes(pkts=%d, octets=%d) = %d, want %d", c.pkts, c.octets, got, c.want)
		}
	}
}

func TestPayloadBearing(t *testing.T) {
	// The §6.1 rule: TCP, >= 36 payload bytes, ACK seen.
	ok := tcpFlow("1.2.3.4", "5.6.7.8", 4, 500, FlagSYN|FlagACK|FlagPSH)
	if !ok.PayloadBearing() {
		t.Error("full TCP session should be payload-bearing")
	}
	// The 36-byte SYN-only scan from the paper: payload threshold met via
	// TCP options but no ACK — must NOT be payload-bearing.
	synScan := tcpFlow("1.2.3.4", "5.6.7.8", 3, 156, FlagSYN)
	if synScan.PayloadBearing() {
		t.Error("SYN-only scan must not be payload-bearing")
	}
	thin := tcpFlow("1.2.3.4", "5.6.7.8", 2, 100, FlagSYN|FlagACK)
	if thin.PayloadBearing() {
		t.Error("sub-threshold payload must not be payload-bearing")
	}
	udp := tcpFlow("1.2.3.4", "5.6.7.8", 4, 500, FlagACK)
	udp.Proto = ProtoUDP
	if udp.PayloadBearing() {
		t.Error("UDP flow must not be payload-bearing")
	}
}

func TestValidate(t *testing.T) {
	good := tcpFlow("1.2.3.4", "5.6.7.8", 4, 500, FlagACK)
	if err := good.Validate(); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	zero := good
	zero.Packets = 0
	if zero.Validate() == nil {
		t.Error("zero-packet flow accepted")
	}
	tiny := good
	tiny.Octets = 2
	if tiny.Validate() == nil {
		t.Error("octets < packets accepted")
	}
	backwards := good
	backwards.Last = backwards.First.Add(-time.Second)
	if backwards.Validate() == nil {
		t.Error("time-reversed flow accepted")
	}
}

func TestFlagString(t *testing.T) {
	cases := map[uint8]string{
		0:                           "-",
		FlagSYN:                     "S",
		FlagSYN | FlagACK:           "AS",
		FlagFIN | FlagACK | FlagPSH: "APF",
		FlagURG | FlagRST:           "UR",
	}
	for flags, want := range cases {
		if got := FlagString(flags); got != want {
			t.Errorf("FlagString(%#x) = %q, want %q", flags, got, want)
		}
	}
}

func TestRecordString(t *testing.T) {
	rec := tcpFlow("1.2.3.4", "5.6.7.8", 4, 500, FlagACK)
	s := rec.String()
	for _, want := range []string{"1.2.3.4:40000", "5.6.7.8:80", "pkts=4", "flags=A"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		Count:        7,
		SysUptime:    123456,
		ExportTime:   boot.Add(time.Hour),
		FlowSequence: 99,
		EngineType:   1,
		EngineID:     2,
	}
	var buf [HeaderSize]byte
	MarshalHeader(buf[:], &h)
	got, err := UnmarshalHeader(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != h.Count || got.SysUptime != h.SysUptime ||
		!got.ExportTime.Equal(h.ExportTime) || got.FlowSequence != h.FlowSequence ||
		got.EngineType != 1 || got.EngineID != 2 {
		t.Fatalf("round trip: got %+v, want %+v", got, h)
	}
}

func TestUnmarshalHeaderRejects(t *testing.T) {
	var buf [HeaderSize]byte
	if _, err := UnmarshalHeader(buf[:10]); err == nil {
		t.Error("short buffer accepted")
	}
	MarshalHeader(buf[:], &Header{Count: 1, ExportTime: boot})
	buf[0], buf[1] = 0, 9 // version 9
	if _, err := UnmarshalHeader(buf[:]); err == nil {
		t.Error("wrong version accepted")
	}
	MarshalHeader(buf[:], &Header{Count: 0, ExportTime: boot})
	if _, err := UnmarshalHeader(buf[:]); err == nil {
		t.Error("zero count accepted")
	}
	MarshalHeader(buf[:], &Header{Count: 31, ExportTime: boot})
	if _, err := UnmarshalHeader(buf[:]); err == nil {
		t.Error("count > 30 accepted")
	}
}

func TestStreamRoundTrip(t *testing.T) {
	var out bytes.Buffer
	w := NewWriter(&out, boot)
	var want []Record
	for i := 0; i < 95; i++ { // 3 full packets + 1 short
		r := tcpFlow("10.0.0.1", "20.0.0.2", uint32(i+1), uint32(100*(i+1)), FlagSYN|FlagACK)
		r.SrcAddr = netaddr.Addr(uint32(r.SrcAddr) + uint32(i))
		r.First = boot.Add(time.Duration(i) * time.Second)
		r.Last = r.First.Add(500 * time.Millisecond)
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Sequence() != 95 {
		t.Fatalf("Sequence = %d, want 95", w.Sequence())
	}
	got, err := NewReader(&out).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range got {
		g, ww := got[i], want[i]
		if g.SrcAddr != ww.SrcAddr || g.DstAddr != ww.DstAddr ||
			g.Packets != ww.Packets || g.Octets != ww.Octets ||
			g.TCPFlags != ww.TCPFlags || g.Proto != ww.Proto ||
			!g.First.Equal(ww.First) || !g.Last.Equal(ww.Last) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, g, ww)
		}
	}
}

func TestRecordCodecQuick(t *testing.T) {
	f := func(src, dst uint32, pkts uint16, extra uint16, sport, dport uint16, flags, proto, tos uint8, firstMs, durMs uint16) bool {
		r := Record{
			SrcAddr:  netaddr.Addr(src),
			DstAddr:  netaddr.Addr(dst),
			Packets:  uint32(pkts) + 1,
			Octets:   (uint32(pkts) + 1) + uint32(extra),
			First:    boot.Add(time.Duration(firstMs) * time.Millisecond),
			SrcPort:  sport,
			DstPort:  dport,
			TCPFlags: flags,
			Proto:    proto,
			TOS:      tos,
		}
		r.Last = r.First.Add(time.Duration(durMs) * time.Millisecond)
		var buf [RecordSize]byte
		marshalRecord(buf[:], &r, boot)
		got := unmarshalRecord(buf[:], boot)
		return got.SrcAddr == r.SrcAddr && got.DstAddr == r.DstAddr &&
			got.Packets == r.Packets && got.Octets == r.Octets &&
			got.First.Equal(r.First) && got.Last.Equal(r.Last) &&
			got.SrcPort == r.SrcPort && got.DstPort == r.DstPort &&
			got.TCPFlags == r.TCPFlags && got.Proto == r.Proto && got.TOS == r.TOS
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	w := NewWriter(io.Discard, boot)
	bad := tcpFlow("1.2.3.4", "5.6.7.8", 0, 0, 0)
	if err := w.Write(bad); err == nil {
		t.Error("invalid record accepted")
	}
	early := tcpFlow("1.2.3.4", "5.6.7.8", 1, 40, 0)
	early.First = boot.Add(-time.Hour)
	early.Last = early.First
	if err := w.Write(early); err == nil {
		t.Error("pre-boot record accepted")
	}
}

func TestReaderTruncation(t *testing.T) {
	var out bytes.Buffer
	w := NewWriter(&out, boot)
	if err := w.Write(tcpFlow("1.2.3.4", "5.6.7.8", 1, 40, FlagSYN)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := out.Bytes()
	// Truncate mid-record.
	r := NewReader(bytes.NewReader(full[:len(full)-10]))
	if _, err := r.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated body: err = %v, want ErrUnexpectedEOF", err)
	}
	// Truncate mid-header.
	r = NewReader(bytes.NewReader(full[:10]))
	if _, err := r.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated header: err = %v, want ErrUnexpectedEOF", err)
	}
	// Clean EOF.
	r = NewReader(bytes.NewReader(nil))
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("empty stream: err = %v, want EOF", err)
	}
}

func TestWriteAfterErrorSticks(t *testing.T) {
	w := NewWriter(failWriter{}, boot)
	var err error
	for i := 0; i < MaxPerPacket; i++ {
		err = w.Write(tcpFlow("1.2.3.4", "5.6.7.8", 1, 40, FlagSYN))
	}
	if err == nil {
		t.Fatal("write to failing writer succeeded")
	}
	if err2 := w.Write(tcpFlow("1.2.3.4", "5.6.7.8", 1, 40, FlagSYN)); err2 == nil {
		t.Fatal("writer did not stick its error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

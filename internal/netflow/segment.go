package netflow

import (
	"encoding/binary"
	"fmt"
	"time"

	"unclean/internal/netaddr"
)

// Spill-segment record codec: the compact fixed-width binary form flow
// records take when a synthesis run spills to disk. Unlike the V5
// export encoding (whose 16-bit SysUptime-relative timestamps cannot
// represent a full day), this form is lossless: timestamps are absolute
// UTC nanoseconds, so a record survives a disk round trip with every
// analysis-relevant field intact. Timestamps must be representable as
// int64 Unix nanoseconds (years 1678–2262); the zero time.Time is not —
// every synthesized flow carries a real timestamp.
//
// Layout (little-endian, 56 bytes):
//
//	0  SrcAddr u32      20 Octets u32       44 SrcAS u16
//	4  DstAddr u32      24 First  i64 (ns)  46 DstAS u16
//	8  NextHop u32      32 Last   i64 (ns)  48 SrcMask u8
//	12 Input   u16      40 SrcPort u16      49 DstMask u8
//	14 Output  u16      42 DstPort u16      50 TCPFlags u8
//	16 Packets u32                          51 Proto u8
//	                                        52 TOS u8
//	                                        53-55 zero padding

// SegmentRecordSize is the fixed encoded size of one spill record.
const SegmentRecordSize = 56

var segLE = binary.LittleEndian

// EncodeSegmentRecord writes r into buf, which must hold at least
// SegmentRecordSize bytes.
func EncodeSegmentRecord(buf []byte, r *Record) {
	_ = buf[SegmentRecordSize-1]
	segLE.PutUint32(buf[0:], uint32(r.SrcAddr))
	segLE.PutUint32(buf[4:], uint32(r.DstAddr))
	segLE.PutUint32(buf[8:], uint32(r.NextHop))
	segLE.PutUint16(buf[12:], r.Input)
	segLE.PutUint16(buf[14:], r.Output)
	segLE.PutUint32(buf[16:], r.Packets)
	segLE.PutUint32(buf[20:], r.Octets)
	segLE.PutUint64(buf[24:], uint64(r.First.UnixNano()))
	segLE.PutUint64(buf[32:], uint64(r.Last.UnixNano()))
	segLE.PutUint16(buf[40:], r.SrcPort)
	segLE.PutUint16(buf[42:], r.DstPort)
	segLE.PutUint16(buf[44:], r.SrcAS)
	segLE.PutUint16(buf[46:], r.DstAS)
	buf[48] = r.SrcMask
	buf[49] = r.DstMask
	buf[50] = r.TCPFlags
	buf[51] = r.Proto
	buf[52] = r.TOS
	buf[53], buf[54], buf[55] = 0, 0, 0
}

// DecodeSegmentRecord parses one spill record from buf. Timestamps come
// back in UTC; they compare Equal to (and format identically to) the
// times that were encoded.
func DecodeSegmentRecord(buf []byte, r *Record) error {
	if len(buf) < SegmentRecordSize {
		return fmt.Errorf("netflow: segment record truncated: %d bytes", len(buf))
	}
	r.SrcAddr = netaddr.Addr(segLE.Uint32(buf[0:]))
	r.DstAddr = netaddr.Addr(segLE.Uint32(buf[4:]))
	r.NextHop = netaddr.Addr(segLE.Uint32(buf[8:]))
	r.Input = segLE.Uint16(buf[12:])
	r.Output = segLE.Uint16(buf[14:])
	r.Packets = segLE.Uint32(buf[16:])
	r.Octets = segLE.Uint32(buf[20:])
	r.First = time.Unix(0, int64(segLE.Uint64(buf[24:]))).UTC()
	r.Last = time.Unix(0, int64(segLE.Uint64(buf[32:]))).UTC()
	r.SrcPort = segLE.Uint16(buf[40:])
	r.DstPort = segLE.Uint16(buf[42:])
	r.SrcAS = segLE.Uint16(buf[44:])
	r.DstAS = segLE.Uint16(buf[46:])
	r.SrcMask = buf[48]
	r.DstMask = buf[49]
	r.TCPFlags = buf[50]
	r.Proto = buf[51]
	r.TOS = buf[52]
	return nil
}

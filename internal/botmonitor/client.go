package botmonitor

import (
	"bufio"
	"fmt"
	"net"
	"strings"

	"unclean/internal/netaddr"
)

// Bot drives one drone session against a C&C server: register, join the
// channel, emit report lines, quit. addr is the infected host's address,
// declared in the USER realname so it survives transports that hide the
// peer address (net.Pipe, NAT).
type Bot struct {
	Nick    string
	Addr    netaddr.Addr
	Channel string
	// Reports are free-text lines the bot PRIVMSGs into the channel
	// after joining (e.g. "[SCAN]: exploited 12.34.56.78").
	Reports []string
}

// Run performs the session over conn and closes it. It returns once the
// registration round-trip completes and all reports are written.
func (b *Bot) Run(conn net.Conn) error {
	defer conn.Close()
	w := bufio.NewWriter(conn)
	writeLine := func(format string, args ...any) error {
		if _, err := fmt.Fprintf(w, format+"\r\n", args...); err != nil {
			return err
		}
		return w.Flush()
	}
	if err := writeLine("NICK %s", b.Nick); err != nil {
		return err
	}
	if err := writeLine("USER %s 0 * :addr=%s", b.Nick, b.Addr); err != nil {
		return err
	}
	// Wait for the 001 welcome so the JOIN carries the declared host.
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		msg, err := ParseMessage(strings.TrimSpace(sc.Text()))
		if err != nil {
			continue
		}
		if msg.Command == "001" {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := writeLine("JOIN %s", b.Channel); err != nil {
		return err
	}
	for _, report := range b.Reports {
		if err := writeLine("PRIVMSG %s :%s", b.Channel, report); err != nil {
			return err
		}
	}
	return writeLine("QUIT :%s", "offline")
}

// WatchChannel registers on the C&C as an observer, joins channel, and
// feeds everything the server relays into mon until the connection
// closes or done is closed.
func WatchChannel(conn net.Conn, nick, channel string, mon *Monitor, done <-chan struct{}) error {
	w := bufio.NewWriter(conn)
	writeLine := func(format string, args ...any) error {
		if _, err := fmt.Fprintf(w, format+"\r\n", args...); err != nil {
			return err
		}
		return w.Flush()
	}
	if err := writeLine("NICK %s", nick); err != nil {
		return err
	}
	if err := writeLine("USER %s 0 * :observer", nick); err != nil {
		return err
	}
	if err := writeLine("JOIN %s", channel); err != nil {
		return err
	}
	go func() {
		<-done
		conn.Close()
	}()
	err := mon.Run(conn)
	select {
	case <-done:
		return nil // shutdown-induced read error is expected
	default:
		return err
	}
}

package botmonitor

import (
	"fmt"
	"net"
	"testing"
	"time"

	"unclean/internal/netaddr"
)

// startServer launches a C&C server on a loopback TCP listener and returns
// its address and a shutdown function.
func startServer(t *testing.T) (addr string, shutdown func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer("cc.example")
	go srv.Serve(l) //nolint:errcheck // returns on listener close
	return l.Addr().String(), func() {
		l.Close()
		srv.Close()
	}
}

func TestEndToEndMonitoring(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()

	mon := NewMonitor("#owned")
	done := make(chan struct{})
	monConn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	watchErr := make(chan error, 1)
	go func() {
		watchErr <- WatchChannel(monConn, "observer", "#owned", mon, done)
	}()

	// Give the observer a moment to register and join.
	time.Sleep(50 * time.Millisecond)

	// Drive a fleet of bots through real TCP sessions.
	botAddrs := []string{"61.1.2.3", "61.1.2.99", "88.7.6.5", "200.10.20.30"}
	for i, ba := range botAddrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		bot := &Bot{
			Nick:    fmt.Sprintf("drone%d", i),
			Addr:    netaddr.MustParseAddr(ba),
			Channel: "#owned",
			Reports: []string{fmt.Sprintf("[SCAN]: exploited 130.5.5.%d", i+1)},
		}
		if err := bot.Run(conn); err != nil {
			t.Fatalf("bot %d: %v", i, err)
		}
	}

	// Wait for the monitor to see all four bots.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if mon.BotAddrs().Len() >= len(botAddrs) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(done)
	if err := <-watchErr; err != nil {
		t.Fatalf("watch error: %v", err)
	}

	bots := mon.BotAddrs()
	if bots.Len() != len(botAddrs) {
		t.Fatalf("monitor saw %d bots, want %d: %v", bots.Len(), len(botAddrs), bots)
	}
	for _, ba := range botAddrs {
		if !bots.Contains(netaddr.MustParseAddr(ba)) {
			t.Errorf("missing bot %s", ba)
		}
	}
	reported := mon.ReportedAddrs()
	if reported.Len() != len(botAddrs) {
		t.Errorf("reported addrs = %v, want %d exploited hosts", reported, len(botAddrs))
	}
}

func TestServerPingPong(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "NICK pinger\r\nUSER pinger 0 * :x\r\nPING :abc123\r\n")
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4096)
	var got string
	for {
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("read: %v (got %q)", err, got)
		}
		got += string(buf[:n])
		if containsLine(got, "PONG") {
			break
		}
	}
	if !containsLine(got, "abc123") {
		t.Fatalf("PONG did not echo token: %q", got)
	}
}

func containsLine(haystack, needle string) bool {
	return len(haystack) > 0 && len(needle) > 0 && (len(haystack) >= len(needle)) && (stringContains(haystack, needle))
}

func stringContains(h, n string) bool {
	for i := 0; i+len(n) <= len(h); i++ {
		if h[i:i+len(n)] == n {
			return true
		}
	}
	return false
}

func TestServerTopicFlow(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()

	// Botmaster sets the topic before any drone joins.
	boss, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer boss.Close()
	fmt.Fprintf(boss, "NICK boss\r\nUSER boss 0 * :addr=5.5.5.5\r\nJOIN #owned\r\nTOPIC #owned :.advscan lsass 150 5 0 -r\r\n")
	time.Sleep(50 * time.Millisecond)

	// A monitor joining later receives RPL_TOPIC with the standing
	// command.
	mon := NewMonitor("#owned")
	done := make(chan struct{})
	monConn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	watchErr := make(chan error, 1)
	go func() { watchErr <- WatchChannel(monConn, "observer", "#owned", mon, done) }()

	deadline := time.Now().Add(5 * time.Second)
	for len(mon.Commands()) == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	close(done)
	if err := <-watchErr; err != nil {
		t.Fatal(err)
	}
	cmds := mon.Commands()
	if len(cmds) == 0 {
		t.Fatal("monitor never received the standing topic")
	}
	if cmds[0].Text != ".advscan lsass 150 5 0 -r" {
		t.Fatalf("command = %+v", cmds[0])
	}
}

func TestServerRelaysBetweenMembers(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()

	a, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	fmt.Fprintf(a, "NICK alpha\r\nUSER alpha 0 * :x\r\nJOIN #c\r\n")
	time.Sleep(30 * time.Millisecond)
	fmt.Fprintf(b, "NICK beta\r\nUSER beta 0 * :x\r\nJOIN #c\r\nPRIVMSG #c :hello-from-beta\r\n")

	a.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 8192)
	var got string
	for !stringContains(got, "hello-from-beta") {
		n, err := a.Read(buf)
		if err != nil {
			t.Fatalf("alpha never received relay: %v (got %q)", err, got)
		}
		got += string(buf[:n])
	}
	if !stringContains(got, "beta!") {
		t.Errorf("relayed line missing sender prefix: %q", got)
	}
}

// Package botmonitor implements the bot-report collection path: a minimal
// IRC protocol (the RFC 1459 subset botnet C&C channels used in 2006), a
// command-and-control channel monitor that harvests bot IP addresses from
// live IRC traffic, and a small in-process C&C server + bot fleet for
// driving it. The paper's provided bot reports were "collected by
// observing IP addresses communicating on IRC channels" (§1); this package
// is that observer.
package botmonitor

import (
	"fmt"
	"strings"
)

// Message is one IRC protocol line:
//
//	[:prefix] COMMAND param1 param2 ... [:trailing]
type Message struct {
	// Prefix is the origin without the leading ':', e.g.
	// "nick!user@1.2.3.4" or a server name. Empty if absent.
	Prefix string
	// Command is the verb ("JOIN", "PRIVMSG", "332", ...).
	Command string
	// Params are the middle parameters.
	Params []string
	// Trailing is the final parameter after " :", which may contain
	// spaces. HasTrailing distinguishes empty-but-present from absent.
	Trailing    string
	HasTrailing bool
}

// ParseMessage parses one IRC line (without line terminator).
func ParseMessage(line string) (Message, error) {
	var m Message
	rest := strings.TrimRight(line, "\r\n")
	if rest == "" {
		return m, fmt.Errorf("botmonitor: empty IRC line")
	}
	if rest[0] == ':' {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return m, fmt.Errorf("botmonitor: prefix-only IRC line %q", line)
		}
		m.Prefix = rest[1:sp]
		rest = rest[sp+1:]
	}
	// Trailing parameter.
	if i := strings.Index(rest, " :"); i >= 0 {
		m.Trailing = rest[i+2:]
		m.HasTrailing = true
		rest = rest[:i]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return m, fmt.Errorf("botmonitor: IRC line %q has no command", line)
	}
	m.Command = strings.ToUpper(fields[0])
	m.Params = fields[1:]
	return m, nil
}

// String serializes the message as a wire line without terminator.
func (m Message) String() string {
	var b strings.Builder
	if m.Prefix != "" {
		b.WriteByte(':')
		b.WriteString(m.Prefix)
		b.WriteByte(' ')
	}
	b.WriteString(m.Command)
	for _, p := range m.Params {
		b.WriteByte(' ')
		b.WriteString(p)
	}
	if m.HasTrailing {
		b.WriteString(" :")
		b.WriteString(m.Trailing)
	}
	return b.String()
}

// Param returns the i-th middle parameter or "" if absent.
func (m Message) Param(i int) string {
	if i < 0 || i >= len(m.Params) {
		return ""
	}
	return m.Params[i]
}

// HostOf extracts the host portion of a nick!user@host prefix; it returns
// "" for server prefixes (no '@').
func HostOf(prefix string) string {
	at := strings.LastIndexByte(prefix, '@')
	if at < 0 {
		return ""
	}
	return prefix[at+1:]
}

// NickOf extracts the nick portion of a nick!user@host prefix; for a
// server prefix it returns the whole prefix.
func NickOf(prefix string) string {
	bang := strings.IndexByte(prefix, '!')
	if bang < 0 {
		return prefix
	}
	return prefix[:bang]
}

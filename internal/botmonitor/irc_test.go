package botmonitor

import (
	"testing"
	"testing/quick"
)

func TestParseMessageForms(t *testing.T) {
	cases := []struct {
		line string
		want Message
	}{
		{
			"PING :token",
			Message{Command: "PING", Trailing: "token", HasTrailing: true},
		},
		{
			":bot1!x@1.2.3.4 JOIN #owned",
			Message{Prefix: "bot1!x@1.2.3.4", Command: "JOIN", Params: []string{"#owned"}},
		},
		{
			":bot1!x@1.2.3.4 PRIVMSG #owned :hello world",
			Message{Prefix: "bot1!x@1.2.3.4", Command: "PRIVMSG", Params: []string{"#owned"}, Trailing: "hello world", HasTrailing: true},
		},
		{
			":irc.example 001 nick :Welcome",
			Message{Prefix: "irc.example", Command: "001", Params: []string{"nick"}, Trailing: "Welcome", HasTrailing: true},
		},
		{
			"join #chan", // lowercase command normalizes
			Message{Command: "JOIN", Params: []string{"#chan"}},
		},
		{
			"PRIVMSG #c :", // empty but present trailing
			Message{Command: "PRIVMSG", Params: []string{"#c"}, Trailing: "", HasTrailing: true},
		},
	}
	for _, c := range cases {
		got, err := ParseMessage(c.line)
		if err != nil {
			t.Errorf("ParseMessage(%q): %v", c.line, err)
			continue
		}
		if got.Prefix != c.want.Prefix || got.Command != c.want.Command ||
			got.Trailing != c.want.Trailing || got.HasTrailing != c.want.HasTrailing ||
			len(got.Params) != len(c.want.Params) {
			t.Errorf("ParseMessage(%q) = %+v, want %+v", c.line, got, c.want)
			continue
		}
		for i := range got.Params {
			if got.Params[i] != c.want.Params[i] {
				t.Errorf("ParseMessage(%q) param %d = %q, want %q", c.line, i, got.Params[i], c.want.Params[i])
			}
		}
	}
}

func TestParseMessageRejects(t *testing.T) {
	for _, line := range []string{"", "\r\n", ":prefixonly", "   "} {
		if _, err := ParseMessage(line); err == nil {
			t.Errorf("ParseMessage(%q) succeeded, want error", line)
		}
	}
}

func TestMessageStringRoundTrip(t *testing.T) {
	lines := []string{
		"PING :token",
		":bot1!x@1.2.3.4 JOIN #owned",
		":bot1!x@1.2.3.4 PRIVMSG #owned :scan report 1.2.3.4",
		"NICK drone42",
	}
	for _, line := range lines {
		m, err := ParseMessage(line)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.String(); got != line {
			t.Errorf("round trip %q -> %q", line, got)
		}
	}
}

func TestMessageStringReparses(t *testing.T) {
	f := func(prefixRaw, cmdRaw, p1, trailing string, hasTrailing bool) bool {
		clean := func(s string, allowSpace bool) string {
			out := make([]rune, 0, len(s))
			for _, r := range s {
				if r == '\r' || r == '\n' || r == 0 {
					continue
				}
				if !allowSpace && (r == ' ' || r == ':') {
					continue
				}
				out = append(out, r)
			}
			return string(out)
		}
		m := Message{
			Prefix:      clean(prefixRaw, false),
			Command:     "CMD", // fixed valid command; fuzzing targets params
			Trailing:    clean(trailing, true),
			HasTrailing: hasTrailing,
		}
		if p := clean(p1, false); p != "" {
			m.Params = append(m.Params, p)
		}
		got, err := ParseMessage(m.String())
		if err != nil {
			return false
		}
		if got.Prefix != m.Prefix || got.Command != m.Command || len(got.Params) != len(m.Params) {
			return false
		}
		if m.HasTrailing && got.Trailing != m.Trailing {
			// Trailing with leading/trailing spaces may re-tokenize; only
			// require equality when trailing has no leading space issue.
			return got.HasTrailing
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHostNickOf(t *testing.T) {
	if HostOf("bot!u@1.2.3.4") != "1.2.3.4" {
		t.Error("HostOf wrong")
	}
	if HostOf("irc.server.example") != "" {
		t.Error("HostOf of server prefix should be empty")
	}
	if NickOf("bot!u@1.2.3.4") != "bot" {
		t.Error("NickOf wrong")
	}
	if NickOf("irc.server.example") != "irc.server.example" {
		t.Error("NickOf of server prefix should be whole prefix")
	}
}

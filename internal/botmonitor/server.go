package botmonitor

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"

	"unclean/internal/netaddr"
)

// Server is a minimal IRC daemon sufficient to host a botnet C&C channel:
// registration (NICK/USER), JOIN, PRIVMSG fan-out, PING/PONG, QUIT. It
// exists so the monitor can be exercised against live protocol traffic
// (over real TCP in the examples, over net.Pipe in tests).
type Server struct {
	name string

	mu       sync.Mutex
	clients  map[*client]struct{}
	channels map[string]map[*client]struct{}
	topics   map[string]string
	closed   bool
}

type client struct {
	srv  *Server
	conn net.Conn
	out  chan string
	done chan struct{}

	mu         sync.Mutex
	nick       string
	user       string
	host       string
	registered bool
}

// NewServer returns a server named name (used in numeric reply prefixes).
func NewServer(name string) *Server {
	return &Server{
		name:     name,
		clients:  make(map[*client]struct{}),
		channels: make(map[string]map[*client]struct{}),
		topics:   make(map[string]string),
	}
}

// Serve accepts connections from l until l is closed. It blocks; run it
// in a goroutine. Each connection is handled concurrently.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.ServeConn(conn)
	}
}

// ServeConn runs the IRC session on one connection until it closes. The
// client's visible host is taken from the connection's remote address
// when it is TCP; bots behind net.Pipe should declare their address via
// the USER realname field ("addr=a.b.c.d"), which mirrors how drone
// hostmasks carried the infected machine's IP.
func (s *Server) ServeConn(conn net.Conn) {
	c := &client{
		srv:  s,
		conn: conn,
		out:  make(chan string, 64),
		done: make(chan struct{}),
	}
	if tcp, ok := conn.RemoteAddr().(*net.TCPAddr); ok && tcp.IP.To4() != nil {
		c.host = tcp.IP.String()
	} else {
		c.host = "unknown.host"
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.clients[c] = struct{}{}
	s.mu.Unlock()

	go c.writer()
	c.reader()
	s.drop(c)
}

// Close disconnects every client.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	clients := make([]*client, 0, len(s.clients))
	for c := range s.clients {
		clients = append(clients, c)
	}
	s.mu.Unlock()
	for _, c := range clients {
		c.conn.Close()
	}
}

func (s *Server) drop(c *client) {
	s.mu.Lock()
	delete(s.clients, c)
	for _, members := range s.channels {
		delete(members, c)
	}
	s.mu.Unlock()
	close(c.done)
	c.conn.Close()
}

func (c *client) writer() {
	w := bufio.NewWriter(c.conn)
	for {
		select {
		case line := <-c.out:
			if _, err := w.WriteString(line + "\r\n"); err != nil {
				return
			}
			// Flush eagerly unless more lines are queued.
			if len(c.out) == 0 {
				if err := w.Flush(); err != nil {
					return
				}
			}
		case <-c.done:
			return
		}
	}
}

func (c *client) send(line string) {
	select {
	case c.out <- line:
	case <-c.done:
	default:
		// Slow consumer: drop the line rather than stalling the C&C.
	}
}

func (c *client) prefix() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("%s!%s@%s", c.nick, c.user, c.host)
}

func (c *client) reader() {
	sc := bufio.NewScanner(c.conn)
	sc.Buffer(make([]byte, 8*1024), 8*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		msg, err := ParseMessage(line)
		if err != nil {
			continue
		}
		if quit := c.handle(msg); quit {
			return
		}
	}
}

// handle processes one inbound message; it reports whether the session
// should end.
func (c *client) handle(msg Message) bool {
	s := c.srv
	switch msg.Command {
	case "NICK":
		nick := msg.Param(0)
		if nick == "" {
			nick = msg.Trailing
		}
		c.mu.Lock()
		c.nick = nick
		c.mu.Unlock()
		c.maybeWelcome()
	case "USER":
		c.mu.Lock()
		c.user = msg.Param(0)
		c.mu.Unlock()
		// Drone convention: realname "addr=a.b.c.d" declares the infected
		// host's address when the transport hides it.
		if rest, ok := strings.CutPrefix(msg.Trailing, "addr="); ok {
			if a, err := netaddr.ParseAddr(rest); err == nil {
				c.mu.Lock()
				c.host = a.String()
				c.mu.Unlock()
			}
		}
		c.maybeWelcome()
	case "PING":
		token := msg.Trailing
		if token == "" {
			token = msg.Param(0)
		}
		c.send(fmt.Sprintf(":%s PONG %s :%s", s.name, s.name, token))
	case "JOIN":
		ch := strings.ToLower(msg.Param(0))
		if ch == "" {
			ch = strings.ToLower(msg.Trailing)
		}
		if ch == "" {
			return false
		}
		s.mu.Lock()
		members := s.channels[ch]
		if members == nil {
			members = make(map[*client]struct{})
			s.channels[ch] = members
		}
		members[c] = struct{}{}
		topic := s.topics[ch]
		s.mu.Unlock()
		s.broadcast(ch, fmt.Sprintf(":%s JOIN %s", c.prefix(), ch), nil)
		// Botnet C&C convention: the channel topic carries the standing
		// command; send RPL_TOPIC (332) to the joiner when one is set.
		if topic != "" {
			c.mu.Lock()
			nick := c.nick
			c.mu.Unlock()
			c.send(fmt.Sprintf(":%s 332 %s %s :%s", s.name, nick, ch, topic))
		}
	case "TOPIC":
		ch := strings.ToLower(msg.Param(0))
		if ch == "" || !msg.HasTrailing {
			return false
		}
		s.mu.Lock()
		s.topics[ch] = msg.Trailing
		s.mu.Unlock()
		s.broadcast(ch, fmt.Sprintf(":%s TOPIC %s :%s", c.prefix(), ch, msg.Trailing), nil)
	case "PRIVMSG", "NOTICE":
		ch := strings.ToLower(msg.Param(0))
		line := fmt.Sprintf(":%s %s %s :%s", c.prefix(), msg.Command, ch, msg.Trailing)
		s.broadcast(ch, line, c)
	case "QUIT":
		return true
	}
	return false
}

func (c *client) maybeWelcome() {
	c.mu.Lock()
	ready := c.nick != "" && c.user != "" && !c.registered
	if ready {
		c.registered = true
	}
	nick := c.nick
	c.mu.Unlock()
	if ready {
		c.send(fmt.Sprintf(":%s 001 %s :Welcome to %s", c.srv.name, nick, c.srv.name))
	}
}

// broadcast sends line to every member of ch except skip.
func (s *Server) broadcast(ch string, line string, skip *client) {
	s.mu.Lock()
	members := make([]*client, 0, len(s.channels[ch]))
	for m := range s.channels[ch] {
		if m != skip {
			members = append(members, m)
		}
	}
	s.mu.Unlock()
	for _, m := range members {
		m.send(line)
	}
}

package botmonitor

import (
	"net"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func dialOrSkip(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

func deadline() time.Time { return time.Now().Add(3 * time.Second) }

// The monitor parses hostile-controlled IRC traffic; no line may panic
// it.
func TestObserveLineNeverPanics(t *testing.T) {
	m := NewMonitor("#owned")
	f := func(line string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ObserveLine panicked on %q: %v", line, r)
			}
		}()
		m.ObserveLine(line)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Structured-looking but hostile lines: every command with adversarial
// params.
func TestObserveHostileStructuredLines(t *testing.T) {
	m := NewMonitor("")
	hostile := []string{
		":a!b@999.999.999.999 JOIN #x",
		":a!b@1.2.3.4 PRIVMSG", // missing params
		": JOIN #x",
		":!@ PRIVMSG #x :" + strings.Repeat("1.2.3.4 ", 500),
		":a!b@1.2.3.4 332",
		":a!b@1.2.3.4 TOPIC",
		":a!b@1.2.3.4 TOPIC #x",
		"JOIN :" + strings.Repeat("#", 1000),
		":" + strings.Repeat("x", 600) + " PRIVMSG #x :hi",
	}
	for _, line := range hostile {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panicked on %q: %v", line, r)
				}
			}()
			m.ObserveLine(line)
		}()
	}
}

// The server's message handler runs against raw attacker connections.
func TestServerHandleHostileMessages(t *testing.T) {
	// Drive hostile lines through a real session so handler state
	// (registration, channels) is exercised.
	addr, shutdown := startServer(t)
	defer shutdown()
	conn := dialOrSkip(t, addr)
	defer conn.Close()
	payload := "NICK \r\nUSER\r\nJOIN\r\nJOIN :\r\nTOPIC\r\nPRIVMSG\r\nPING\r\nMODE #x +b\r\nNICK a\r\nUSER a 0 * :addr=999.1.1.1\r\nJOIN #x\r\nPRIVMSG #x :ok\r\nQUIT\r\n"
	if _, err := conn.Write([]byte(payload)); err != nil {
		t.Fatal(err)
	}
	// If the server survived, a fresh wellformed session still works.
	conn2 := dialOrSkip(t, addr)
	defer conn2.Close()
	if _, err := conn2.Write([]byte("NICK ok\r\nUSER ok 0 * :x\r\nPING :tok\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	conn2.SetReadDeadline(deadline())
	n, err := conn2.Read(buf)
	if err != nil || n == 0 {
		t.Fatalf("server unresponsive after hostile session: %v", err)
	}
}

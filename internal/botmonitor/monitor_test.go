package botmonitor

import (
	"strings"
	"testing"

	"unclean/internal/netaddr"
)

func TestMonitorHarvestsJoins(t *testing.T) {
	m := NewMonitor("#owned")
	stream := strings.Join([]string{
		":a!x@12.34.56.78 JOIN #owned",
		":b!x@99.88.77.66 JOIN #owned",
		":c!x@10.0.0.1 JOIN #owned",     // RFC1918: discarded
		":d!x@cloaked.host JOIN #owned", // not an IP: discarded
		":e!x@5.5.5.5 JOIN #other",      // other channel: discarded
		":irc.server 001 mon :Welcome",  // server numeric: no host
	}, "\r\n")
	if err := m.Run(strings.NewReader(stream)); err != nil {
		t.Fatal(err)
	}
	bots := m.BotAddrs()
	if bots.Len() != 2 {
		t.Fatalf("BotAddrs = %v, want 2 addresses", bots)
	}
	for _, want := range []string{"12.34.56.78", "99.88.77.66"} {
		if !bots.Contains(netaddr.MustParseAddr(want)) {
			t.Errorf("missing %s", want)
		}
	}
}

func TestMonitorHarvestsPrivmsgBodies(t *testing.T) {
	m := NewMonitor("#owned")
	m.ObserveLine(":a!x@12.34.56.78 PRIVMSG #owned :[SCAN]: exploited 200.1.2.3 and 201.4.5.6.")
	m.ObserveLine(":a!x@12.34.56.78 PRIVMSG #owned :version 1.2.3 build 4") // 1.2.3 is not quad
	bots := m.BotAddrs()
	if bots.Len() != 1 || !bots.Contains(netaddr.MustParseAddr("12.34.56.78")) {
		t.Fatalf("BotAddrs = %v", bots)
	}
	reported := m.ReportedAddrs()
	if reported.Len() != 2 {
		t.Fatalf("ReportedAddrs = %v, want 2", reported)
	}
	all := m.All()
	if all.Len() != 3 {
		t.Fatalf("All = %v, want 3", all)
	}
}

func TestMonitorAllChannels(t *testing.T) {
	m := NewMonitor("")
	m.ObserveLine(":a!x@1.1.1.1 JOIN #one")
	m.ObserveLine(":b!x@2.2.2.2 JOIN #two")
	if m.BotAddrs().Len() != 2 {
		t.Fatalf("wildcard monitor missed a channel")
	}
}

func TestMonitorChannelCaseInsensitive(t *testing.T) {
	m := NewMonitor("#Owned")
	m.ObserveLine(":a!x@1.1.1.1 JOIN #owned")
	m.ObserveLine(":a!x@2.2.2.2 PRIVMSG #OWNED :hi")
	if m.BotAddrs().Len() != 2 {
		t.Fatal("channel match should be case-insensitive")
	}
}

func TestMonitorJoinTrailingForm(t *testing.T) {
	// Some clients send "JOIN :#chan".
	m := NewMonitor("#owned")
	m.ObserveLine(":a!x@3.3.3.3 JOIN :#owned")
	if m.BotAddrs().Len() != 1 {
		t.Fatal("JOIN with trailing channel not handled")
	}
}

func TestMonitorStats(t *testing.T) {
	m := NewMonitor("#owned")
	m.ObserveLine(":a!x@1.1.1.1 JOIN #owned")
	m.ObserveLine(":garbageprefixwithoutcommand")
	lines, malformed := m.Stats()
	if lines != 2 || malformed != 1 {
		t.Fatalf("Stats = %d, %d, want 2, 1", lines, malformed)
	}
}

func TestMonitorRecordsTopicCommands(t *testing.T) {
	m := NewMonitor("#owned")
	m.ObserveLine(":boss!x@5.5.5.5 TOPIC #owned :.advscan lsass 150 5 0 -r")
	m.ObserveLine(":cc.server 332 drone1 #owned :.advscan lsass 150 5 0 -r")
	m.ObserveLine(":boss!x@5.5.5.5 TOPIC #other :.ddos 66.7.8.9 80") // other channel
	cmds := m.Commands()
	if len(cmds) != 2 {
		t.Fatalf("commands = %d, want 2", len(cmds))
	}
	if cmds[0].Issuer != "boss" || cmds[0].Text != ".advscan lsass 150 5 0 -r" {
		t.Fatalf("command[0] = %+v", cmds[0])
	}
	if cmds[1].Issuer != "" || cmds[1].Channel != "#owned" {
		t.Fatalf("command[1] = %+v", cmds[1])
	}
	// The topic setter's host is harvested like any other participant.
	if !m.BotAddrs().Contains(netaddr.MustParseAddr("5.5.5.5")) {
		t.Error("topic setter's address not harvested")
	}
	// Addresses in commands are harvested as reported victims.
	m.ObserveLine(":boss!x@5.5.5.5 TOPIC #owned :.ddos 66.7.8.9 80")
	if !m.ReportedAddrs().Contains(netaddr.MustParseAddr("66.7.8.9")) {
		t.Error("DDoS target in topic not harvested")
	}
	// Returned slice is a copy.
	cmds[0].Text = "mutated"
	if m.Commands()[0].Text == "mutated" {
		t.Error("Commands returns shared storage")
	}
}

func TestMonitorAccumulatesAcrossSnapshots(t *testing.T) {
	m := NewMonitor("#owned")
	m.ObserveLine(":a!x@1.1.1.1 JOIN #owned")
	if m.BotAddrs().Len() != 1 {
		t.Fatal("first snapshot wrong")
	}
	m.ObserveLine(":b!x@2.2.2.2 JOIN #owned")
	if m.BotAddrs().Len() != 2 {
		t.Fatal("snapshot consumed earlier observations")
	}
}

package botmonitor

import (
	"bufio"
	"io"
	"strings"
	"sync"

	"unclean/internal/ipset"
	"unclean/internal/netaddr"
)

// Monitor watches an IRC traffic stream on a C&C channel and harvests the
// IP addresses of bots. Two harvesting paths mirror how such monitoring
// worked in practice:
//
//   - hostmask harvesting: bots appear as nick!user@a.b.c.d in JOIN and
//     PRIVMSG prefixes;
//   - payload harvesting: bots report scan/exploit results into the
//     channel ("[SCAN]: exploited 12.34.56.78"), identifying further
//     compromised addresses.
//
// Addresses inside reserved space are discarded (cloaked or spoofed
// hostmasks frequently decode to garbage).
//
// A Monitor is safe for concurrent use: WatchChannel feeds it from a
// connection goroutine while callers poll the harvested sets.
type Monitor struct {
	channel string

	mu        sync.Mutex
	hostAddrs *ipset.Builder
	bodyAddrs *ipset.Builder
	commands  []Command
	lines     int
	malformed int
}

// Command is one C&C instruction observed on the channel — a TOPIC set by
// the botmaster (the standing command bots execute on join) or relayed as
// RPL_TOPIC. Commands are the behavioral intelligence IRC monitoring
// yields beyond addresses.
type Command struct {
	// Channel the command was set on.
	Channel string
	// Issuer is the setter's nick ("" for server-relayed 332 replies).
	Issuer string
	// Text is the command, e.g. ".advscan lsass 150 5 0 -r".
	Text string
}

// NewMonitor builds a monitor for one channel name (e.g. "#owned").
// An empty channel monitors all channels in the stream.
func NewMonitor(channel string) *Monitor {
	return &Monitor{
		channel:   channel,
		hostAddrs: ipset.NewBuilder(0),
		bodyAddrs: ipset.NewBuilder(0),
	}
}

// ObserveLine feeds one raw IRC line into the monitor.
func (m *Monitor) ObserveLine(line string) {
	msg, err := ParseMessage(line)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lines++
	if err != nil {
		m.malformed++
		return
	}
	m.observe(msg)
}

// Observe feeds one parsed message into the monitor.
func (m *Monitor) Observe(msg Message) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.observe(msg)
}

func (m *Monitor) observe(msg Message) {
	switch msg.Command {
	case "JOIN":
		// JOIN's channel may be a middle param or the trailing.
		ch := msg.Param(0)
		if ch == "" {
			ch = msg.Trailing
		}
		if !m.wantChannel(ch) {
			return
		}
		m.harvestPrefix(msg.Prefix)
	case "PRIVMSG", "NOTICE":
		if !m.wantChannel(msg.Param(0)) {
			return
		}
		m.harvestPrefix(msg.Prefix)
		m.harvestBody(msg.Trailing)
	case "TOPIC":
		if !m.wantChannel(msg.Param(0)) {
			return
		}
		m.harvestPrefix(msg.Prefix)
		m.harvestBody(msg.Trailing)
		m.commands = append(m.commands, Command{
			Channel: msg.Param(0),
			Issuer:  NickOf(msg.Prefix),
			Text:    msg.Trailing,
		})
	case "332": // RPL_TOPIC: server relaying the standing topic on join
		if !m.wantChannel(msg.Param(1)) {
			return
		}
		m.harvestBody(msg.Trailing)
		m.commands = append(m.commands, Command{
			Channel: msg.Param(1),
			Text:    msg.Trailing,
		})
	}
}

// Commands returns the C&C instructions observed so far, in order.
func (m *Monitor) Commands() []Command {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Command, len(m.commands))
	copy(out, m.commands)
	return out
}

func (m *Monitor) wantChannel(ch string) bool {
	return m.channel == "" || strings.EqualFold(ch, m.channel)
}

func (m *Monitor) harvestPrefix(prefix string) {
	host := HostOf(prefix)
	if host == "" {
		return
	}
	if a, err := netaddr.ParseAddr(host); err == nil && !netaddr.IsReserved(a) {
		m.hostAddrs.Add(a)
	}
}

// harvestBody scans free text for dotted-quad addresses.
func (m *Monitor) harvestBody(text string) {
	for _, tok := range strings.FieldsFunc(text, func(r rune) bool {
		return !(r == '.' || (r >= '0' && r <= '9'))
	}) {
		tok = strings.Trim(tok, ".") // sentence punctuation sticks to tokens
		if strings.Count(tok, ".") != 3 {
			continue
		}
		if a, err := netaddr.ParseAddr(tok); err == nil && !netaddr.IsReserved(a) {
			m.bodyAddrs.Add(a)
		}
	}
}

// Run consumes an entire IRC stream from r until EOF.
func (m *Monitor) Run(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 16*1024), 16*1024)
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			m.ObserveLine(line)
		}
	}
	return sc.Err()
}

// BotAddrs returns the addresses harvested from hostmasks: hosts directly
// observed communicating with the C&C.
func (m *Monitor) BotAddrs() ipset.Set {
	m.mu.Lock()
	defer m.mu.Unlock()
	return snapshot(m.hostAddrs)
}

// ReportedAddrs returns the addresses harvested from message bodies:
// hosts the bots claim to have compromised or probed.
func (m *Monitor) ReportedAddrs() ipset.Set {
	m.mu.Lock()
	defer m.mu.Unlock()
	return snapshot(m.bodyAddrs)
}

// All returns the union of both harvests.
func (m *Monitor) All() ipset.Set { return m.BotAddrs().Union(m.ReportedAddrs()) }

// Stats reports lines consumed and lines that failed to parse.
func (m *Monitor) Stats() (lines, malformed int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lines, m.malformed
}

// snapshot builds the current set without consuming the builder.
func snapshot(b *ipset.Builder) ipset.Set {
	s := b.Build()
	b.AddSet(s) // re-seed the builder so later observations accumulate
	return s
}

// Package unclean is a from-scratch reproduction of "Using uncleanliness
// to predict future botnet addresses" (Collins, Shimeall, Faber, Janies,
// Weaver, De Shon, Kadane — IMC 2007).
//
// The paper's datasets are proprietary, so the repository includes a full
// synthetic measurement world (internal/simnet over internal/netmodel)
// whose traffic is observed through the same kind of detectors the paper
// used (internal/scandetect, internal/spamdetect, internal/botmonitor).
// The analyses themselves live in internal/core; internal/experiments
// regenerates every table and figure; cmd/uncleanctl drives it all.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for paper-vs-measured results.
package unclean

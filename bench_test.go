// Benchmarks regenerating every table and figure in the paper's
// evaluation, plus the ablations called out in DESIGN.md §5. Each
// benchmark reports the experiment's key statistic through
// b.ReportMetric so regressions in the reproduced *shape* (not just
// speed) are visible in benchmark output.
//
// Run: go test -bench=. -benchmem
package unclean_test

import (
	"sync"
	"testing"

	"unclean/internal/core"
	"unclean/internal/experiments"
	"unclean/internal/ipset"
	"unclean/internal/nac"
	"unclean/internal/netflow"
	"unclean/internal/netmodel"
	"unclean/internal/scandetect"
	"unclean/internal/simnet"
	"unclean/internal/stats"
)

// The benchmark dataset is built once at a scale between the test and CLI
// configurations, with the paper's full 1000-draw estimates left to the
// CLI (benchmarks use 200 to keep -bench runs minutes, not hours).
var (
	benchOnce sync.Once
	benchDS   *experiments.Dataset
	benchErr  error
)

func benchConfig() experiments.Config {
	cfg := experiments.Quick()
	cfg.Draws = 200
	return cfg
}

func dataset(b *testing.B) *experiments.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		benchDS, benchErr = experiments.Build(benchConfig())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDS
}

func BenchmarkBuildDataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds, err := experiments.Build(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(ds.Flows)), "flows")
	}
}

func BenchmarkTable1(b *testing.B) {
	ds := dataset(b)
	for i := 0; i < b.N; i++ {
		res := experiments.Table1(ds)
		if res.Render() == "" {
			b.Fatal("empty table")
		}
	}
	b.ReportMetric(float64(ds.Report("bot").Size()), "bot-addrs")
	b.ReportMetric(float64(ds.Report("control").Size()), "control-addrs")
}

func BenchmarkFigure1(b *testing.B) {
	ds := dataset(b)
	var res *experiments.Figure1Result
	for i := 0; i < b.N; i++ {
		res = experiments.Figure1(ds)
	}
	b.ReportMetric(res.PeakBotFraction(ds.Report("bot-test").Size()), "peak-bot-frac")
}

func BenchmarkFigure2(b *testing.B) {
	ds := dataset(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2(ds)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Density.Holds {
			b.Fatal("spatial uncleanliness lost")
		}
		r20 := res.Density.Rows[20-16]
		b.ReportMetric(float64(r20.Naive)/float64(r20.Observed), "naive/bot-blocks@20")
	}
}

func BenchmarkFigure3(b *testing.B) {
	ds := dataset(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(ds)
		if err != nil {
			b.Fatal(err)
		}
		holds := 0.0
		for _, tag := range res.Order {
			if res.Panels[tag].Holds {
				holds++
			}
		}
		b.ReportMetric(holds, "panels-holding")
	}
}

func BenchmarkFigure4(b *testing.B) {
	ds := dataset(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(ds)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Panels["bot"].BandLo), "bot-band-lo")
		phishHolds := 0.0
		if res.Panels["phish"].Holds {
			phishHolds = 1
		}
		b.ReportMetric(phishHolds, "phish-predicted")
	}
}

func BenchmarkFigure5(b *testing.B) {
	ds := dataset(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(ds)
		if err != nil {
			b.Fatal(err)
		}
		holds := 0.0
		if res.Prediction.Holds {
			holds = 1
		}
		b.ReportMetric(holds, "phish-self-predicted")
	}
}

func BenchmarkTable2(b *testing.B) {
	ds := dataset(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(ds)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Partition.Candidate.Len()), "candidates")
	}
}

func BenchmarkTable3(b *testing.B) {
	ds := dataset(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(ds)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].TPRate(), "tp-rate@24")
		b.ReportMetric(res.Rows[0].TPRateAssumingUnknownHostile(), "tp-rate-unk@24")
	}
}

// BenchmarkAblationNaiveControl quantifies the Figure 2 design choice:
// how much the naive uniform estimate overstates block counts relative to
// the empirical estimate.
func BenchmarkAblationNaiveControl(b *testing.B) {
	ds := dataset(b)
	bot := ds.Report("bot").Addrs
	control := ds.Report("control").Addrs
	for i := 0; i < b.N; i++ {
		rng := stats.NewRNG(uint64(i) + 1)
		naive := netmodel.NaiveSample(bot.Len(), rng)
		res, err := core.SpatialDensity(bot, control, naive, 50, core.PrefixRange{Lo: 20, Hi: 24}, rng)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(float64(last.Naive)/last.Control.Median, "naive/empirical@24")
	}
}

// BenchmarkAblationReportAge sweeps the age of the predicting bot report:
// the paper's five-month gap is the extreme case, so fresher reports
// should intersect the October activity at least as strongly.
func BenchmarkAblationReportAge(b *testing.B) {
	ds := dataset(b)
	w := ds.World
	present := ds.Report("bot").Addrs
	for _, weeks := range []int{1, 4, 10, 20} {
		b.Run(byWeeks(weeks), func(b *testing.B) {
			to := experiments.UncleanFrom.AddDate(0, 0, -7*weeks)
			from := to.AddDate(0, 0, -1)
			past := w.MonitoredBotsActive(from, to)
			if past.IsEmpty() {
				b.Skip("no bots in window")
			}
			var observed int
			for i := 0; i < b.N; i++ {
				observed = past.BlockIntersectCount(present, 24)
			}
			b.ReportMetric(float64(observed)/float64(past.BlockCount(24)), "hit-frac@24")
		})
	}
}

func byWeeks(w int) string {
	return map[int]string{1: "age=1w", 4: "age=4w", 10: "age=10w", 20: "age=20w"}[w]
}

// BenchmarkAblationUniformUncleanliness rebuilds the world with
// uncleanliness drawn uniformly instead of beta-concentrated; the spatial
// effect should weaken markedly (higher observed/control block ratio).
func BenchmarkAblationUniformUncleanliness(b *testing.B) {
	for _, mode := range []string{"concentrated", "uniform"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				wcfg := simnet.DefaultConfig(benchConfig().Scale)
				wcfg.Seed = benchConfig().Seed
				if mode == "uniform" {
					wcfg.Model = netmodel.DefaultConfig()
					wcfg.Model.TargetNetworks = 0
					wcfg.Model.Slash16PerSlash8 = 0
					wcfg.Model.UncleanAlpha, wcfg.Model.UncleanBeta = 1, 1
					// Rescale the infection rate so the epidemic size
					// matches the concentrated world (E[u^2] is 1/3 for
					// Uniform vs ~0.031 for Beta(0.6,4.5)); only the
					// *placement* of compromises should differ.
					wcfg.InfectionRate *= 0.031 / (1.0 / 3.0)
				}
				w, err := simnet.NewWorld(wcfg)
				if err != nil {
					b.Fatal(err)
				}
				bots := w.MonitoredBotsActive(experiments.UncleanFrom, experiments.UncleanTo)
				rng := stats.NewRNG(5)
				control, err := w.ControlSample(bots.Len()*10, rng)
				if err != nil {
					b.Fatal(err)
				}
				// The clustering signal lives at /16: with concentrated
				// uncleanliness, bots pack into the unclean /16s; with
				// uniform uncleanliness they spread like the control.
				res, err := core.SpatialDensity(bots, control, ipset.Set{}, 30,
					core.PrefixRange{Lo: 16, Hi: 16}, rng)
				if err != nil {
					b.Fatal(err)
				}
				row := res.Rows[0]
				b.ReportMetric(float64(row.Observed)/row.Control.Median, "obs/control-blocks@16")
			}
		})
	}
}

// BenchmarkAblationSampling quantifies flow-based detection under packet
// sampling: the hourly scan detector's report shrinks as the exporter
// samples more aggressively, because 2-3 packet probes vanish from the
// flow log.
func BenchmarkAblationSampling(b *testing.B) {
	ds := dataset(b)
	baseline, err := scandetect.DetectThreshold(ds.Flows, scandetect.DefaultThresholdConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, interval := range []int{1, 10, 100} {
		b.Run(byInterval(interval), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sampled, err := netflow.SampleRecords(ds.Flows, interval, stats.NewRNG(uint64(interval)))
				if err != nil {
					b.Fatal(err)
				}
				got, err := scandetect.DetectThreshold(sampled, scandetect.DefaultThresholdConfig())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(got.Len())/float64(baseline.Len()), "scan-recall")
				b.ReportMetric(float64(len(sampled))/float64(len(ds.Flows)), "flow-survival")
			}
		})
	}
}

func byInterval(i int) string {
	return map[int]string{1: "1-in-1", 10: "1-in-10", 100: "1-in-100"}[i]
}

// BenchmarkAblationClustering quantifies the §4.1 design choice of
// homogeneous CIDR blocks over network-aware clustering: heterogeneous
// cluster spans differ by orders of magnitude, which is why the paper
// rejects them for density comparisons.
func BenchmarkAblationClustering(b *testing.B) {
	ds := dataset(b)
	control := ds.Report("control").Addrs
	bot := ds.Report("bot").Addrs
	for i := 0; i < b.N; i++ {
		clustering, err := nac.Build(control, 256, 8, 24)
		if err != nil {
			b.Fatal(err)
		}
		spans := clustering.SpanStats()
		b.ReportMetric(spans.Max/spans.Min, "span-max/min")
		b.ReportMetric(float64(clustering.Len()), "clusters")
		// The unclean report still concentrates: it covers fewer
		// clusters than its own cardinality.
		b.ReportMetric(float64(clustering.CoverCount(bot))/float64(bot.Len()), "bot-cover-frac")
	}
}

// BenchmarkExtLocality reports the extension experiment's headline
// numbers: the stable benign audience and the §6.2 span utilization.
func BenchmarkExtLocality(b *testing.B) {
	ds := dataset(b)
	for i := 0; i < b.N; i++ {
		res := experiments.Locality(ds)
		b.ReportMetric(res.Payload.ReturningFraction(), "returning-frac")
		b.ReportMetric(res.Frac, "span-utilization")
	}
}

// BenchmarkAblationDetectors compares the hourly threshold detector (the
// paper's) against TRW feeding the same temporal test: TRW additionally
// catches slow scanners, enlarging the scan report.
func BenchmarkAblationDetectors(b *testing.B) {
	ds := dataset(b)
	for i := 0; i < b.N; i++ {
		threshold, err := scandetect.DetectThreshold(ds.Flows, scandetect.DefaultThresholdConfig())
		if err != nil {
			b.Fatal(err)
		}
		trw, err := scandetect.DetectTRW(ds.Flows, scandetect.DefaultTRWConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(threshold.Len()), "threshold-scanners")
		b.ReportMetric(float64(trw.Len()), "trw-scanners")
	}
}

module unclean

go 1.22
